// speedlight command-line driver: build a network (built-in shapes or a
// topology file), run a workload, take synchronized snapshots, and print
// the results — optionally side by side with the polling baseline.
//
//   $ ./snapshot_cli --topology leaf-spine:2x2x3 --workload poisson:40000
//         --channel-state --snapshots 5 --interval-ms 5 --compare-polling
//   $ ./snapshot_cli --topology-file mynet.topo --metric queue_depth
//   $ ./snapshot_cli --help
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "net/topology.hpp"
#include "net/topology_io.hpp"
#include "stats/summary.hpp"
#include "workload/apps.hpp"
#include "workload/basic.hpp"

namespace {

using namespace speedlight;

struct CliOptions {
  std::string topology = "leaf-spine:2x2x3";
  std::string topology_file;
  std::string metric = "packet_count";
  std::string workload = "poisson:40000";
  std::string load_balancer = "ecmp";
  bool channel_state = false;
  std::size_t snapshots = 5;
  double interval_ms = 5.0;
  double warmup_ms = 10.0;
  std::uint64_t seed = 1;
  bool compare_polling = false;
  std::uint32_t wire_modulus = 0;
  std::string csv_path;
};

void usage() {
  std::cout << R"(speedlight snapshot_cli — synchronized network snapshots

  --topology SHAPE      leaf-spine:LxSxH | line:N | ring:N | star:N |
                        fat-tree:K | figure1          (default leaf-spine:2x2x3)
  --topology-file PATH  load a .topo file instead (see net/topology_io.hpp)
  --metric NAME         packet_count | byte_count | queue_depth |
                        ewma_interarrival | ewma_rate  (default packet_count)
  --workload SPEC       poisson:PPS | hadoop | graphx | memcache | none
  --lb NAME             ecmp | flowlet                  (default ecmp)
  --channel-state       record in-flight packets (Chandy-Lamport channel state)
  --wire-modulus N      bounded wire id space (0 = 32-bit, default)
  --snapshots N         how many snapshots to take      (default 5)
  --interval-ms X       spacing between snapshots       (default 5)
  --warmup-ms X         workload warmup before snapshotting (default 10)
  --seed N              simulation seed                 (default 1)
  --compare-polling     also run sequential polling sweeps and compare
  --csv PATH            dump per-(snapshot, unit) results as CSV
  --help
)";
}

bool parse_args(int argc, char** argv, CliOptions& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      exit(0);
    } else if (arg == "--topology") {
      opt.topology = value("--topology");
    } else if (arg == "--topology-file") {
      opt.topology_file = value("--topology-file");
    } else if (arg == "--metric") {
      opt.metric = value("--metric");
    } else if (arg == "--workload") {
      opt.workload = value("--workload");
    } else if (arg == "--lb") {
      opt.load_balancer = value("--lb");
    } else if (arg == "--channel-state") {
      opt.channel_state = true;
    } else if (arg == "--wire-modulus") {
      opt.wire_modulus = static_cast<std::uint32_t>(
          std::stoul(value("--wire-modulus")));
    } else if (arg == "--snapshots") {
      opt.snapshots = std::stoul(value("--snapshots"));
    } else if (arg == "--interval-ms") {
      opt.interval_ms = std::stod(value("--interval-ms"));
    } else if (arg == "--warmup-ms") {
      opt.warmup_ms = std::stod(value("--warmup-ms"));
    } else if (arg == "--seed") {
      opt.seed = std::stoull(value("--seed"));
    } else if (arg == "--compare-polling") {
      opt.compare_polling = true;
    } else if (arg == "--csv") {
      opt.csv_path = value("--csv");
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return false;
    }
  }
  return true;
}

std::vector<std::size_t> parse_dims(const std::string& spec) {
  std::vector<std::size_t> dims;
  std::istringstream is(spec);
  std::string token;
  while (std::getline(is, token, 'x')) dims.push_back(std::stoul(token));
  return dims;
}

net::TopologySpec build_topology(const CliOptions& opt) {
  if (!opt.topology_file.empty()) {
    std::ifstream in(opt.topology_file);
    if (!in) {
      throw std::invalid_argument("cannot open " + opt.topology_file);
    }
    return net::read_topology(in);
  }
  const auto colon = opt.topology.find(':');
  const std::string kind = opt.topology.substr(0, colon);
  const std::string args =
      colon == std::string::npos ? "" : opt.topology.substr(colon + 1);
  if (kind == "leaf-spine") {
    const auto d = parse_dims(args.empty() ? "2x2x3" : args);
    if (d.size() != 3) throw std::invalid_argument("leaf-spine:LxSxH");
    return net::make_leaf_spine(d[0], d[1], d[2]);
  }
  if (kind == "line") return net::make_line(std::stoul(args));
  if (kind == "ring") return net::make_ring(std::stoul(args));
  if (kind == "star") return net::make_star(std::stoul(args));
  if (kind == "fat-tree") return net::make_fat_tree(std::stoul(args));
  if (kind == "figure1") return net::make_figure1();
  throw std::invalid_argument("unknown topology " + opt.topology);
}

sw::MetricKind parse_metric(const std::string& name) {
  if (name == "packet_count") return sw::MetricKind::PacketCount;
  if (name == "byte_count") return sw::MetricKind::ByteCount;
  if (name == "queue_depth") return sw::MetricKind::QueueDepth;
  if (name == "ewma_interarrival") return sw::MetricKind::EwmaInterarrival;
  if (name == "ewma_rate") return sw::MetricKind::EwmaPacketRate;
  throw std::invalid_argument("unknown metric " + name);
}

std::vector<std::unique_ptr<wl::Generator>> start_workload(
    core::Network& net, const CliOptions& opt) {
  std::vector<std::unique_ptr<wl::Generator>> gens;
  const auto colon = opt.workload.find(':');
  const std::string kind = opt.workload.substr(0, colon);
  if (kind == "none") return gens;

  std::vector<net::Host*> hosts;
  std::vector<net::NodeId> ids;
  for (std::size_t h = 0; h < net.num_hosts(); ++h) {
    hosts.push_back(&net.host(h));
    ids.push_back(net.host_id(h));
  }
  if (kind == "poisson") {
    const double pps =
        colon == std::string::npos ? 40000 : std::stod(opt.workload.substr(colon + 1));
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      std::vector<net::NodeId> dsts;
      for (const auto id : ids) {
        if (id != hosts[h]->id()) dsts.push_back(id);
      }
      auto g = std::make_unique<wl::PoissonGenerator>(
          net.simulator(), *hosts[h], dsts, pps, 1200, sim::Rng(opt.seed + h));
      g->start(net.now());
      gens.push_back(std::move(g));
    }
  } else if (kind == "hadoop") {
    const std::size_t half = hosts.size() / 2;
    std::vector<net::Host*> mappers(hosts.begin(), hosts.begin() + half);
    std::vector<net::Host*> reducers(hosts.begin() + half, hosts.end());
    auto g = std::make_unique<wl::HadoopGenerator>(
        net.simulator(), mappers, reducers, wl::HadoopGenerator::Options{},
        sim::Rng(opt.seed));
    g->start(net.now());
    gens.push_back(std::move(g));
  } else if (kind == "graphx") {
    auto g = std::make_unique<wl::GraphXGenerator>(
        net.simulator(), hosts, wl::GraphXGenerator::Options{},
        sim::Rng(opt.seed));
    g->start(net.now());
    gens.push_back(std::move(g));
  } else if (kind == "memcache") {
    std::vector<net::Host*> clients{hosts.front()};
    auto g = std::make_unique<wl::MemcacheGenerator>(
        net.simulator(), clients, hosts, wl::MemcacheGenerator::Options{},
        sim::Rng(opt.seed));
    g->start(net.now());
    gens.push_back(std::move(g));
  } else {
    throw std::invalid_argument("unknown workload " + opt.workload);
  }
  return gens;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  if (!parse_args(argc, argv, opt)) {
    usage();
    return 2;
  }
  try {
    core::NetworkOptions netopt;
    netopt.seed = opt.seed;
    netopt.metric = parse_metric(opt.metric);
    netopt.snapshot.channel_state = opt.channel_state;
    netopt.snapshot.wire_id_modulus = opt.wire_modulus;
    netopt.load_balancer = opt.load_balancer == "flowlet"
                               ? sw::LoadBalancerKind::Flowlet
                               : sw::LoadBalancerKind::Ecmp;
    core::Network net(build_topology(opt), netopt);
    std::cout << "network: " << net.num_switches() << " switches, "
              << net.num_hosts() << " hosts; metric " << opt.metric
              << (opt.channel_state ? " (+channel state)" : "") << "\n";

    auto gens = start_workload(net, opt);
    net.run_for(sim::msec(opt.warmup_ms));
    if (opt.compare_polling) net.register_all_units_for_polling();

    const auto campaign = core::run_snapshot_campaign(
        net, opt.snapshots, sim::msec(opt.interval_ms));
    const auto results = campaign.results(net);
    std::cout << results.size() << "/" << opt.snapshots
              << " snapshots complete"
              << (campaign.skipped
                      ? " (" + std::to_string(campaign.skipped) +
                            " refused by the rollover window)"
                      : "")
              << "\n\n";

    for (const auto* snap : results) {
      std::cout << "snapshot " << snap->id << " @ "
                << sim::to_msec(snap->scheduled_at) << "ms: sync span "
                << sim::to_usec(snap->advance_span()) << "us, "
                << snap->consistent_count() << "/" << snap->reports.size()
                << " consistent units, total " << snap->total_value(false);
      if (opt.channel_state) {
        std::cout << " (+" << snap->total_value(true) - snap->total_value(false)
                  << " in flight)";
      }
      std::cout << "\n";
    }

    if (!results.empty()) {
      const auto* last = results.back();
      std::cout << "\nlast snapshot, per switch (ingress unit values):\n";
      for (net::NodeId swid = 0; swid < net.num_switches(); ++swid) {
        std::cout << "  " << std::left << std::setw(10)
                  << net.switch_at(swid).name() << std::right;
        const auto ports = net.switch_at(swid).options().num_ports;
        for (net::PortId p = 0; p < ports; ++p) {
          const auto it =
              last->reports.find({swid, p, net::Direction::Ingress});
          if (it != last->reports.end()) {
            std::cout << " " << std::setw(8)
                      << (it->second.consistent
                              ? std::to_string(it->second.local_value)
                              : std::string("inconsist"));
          }
        }
        std::cout << "\n";
      }
    }

    if (!opt.csv_path.empty()) {
      std::ofstream csv(opt.csv_path);
      if (!csv) {
        std::cerr << "cannot write " << opt.csv_path << "\n";
        return 1;
      }
      core::write_snapshot_csv(csv, results);
      std::cout << "\nwrote " << opt.csv_path << "\n";
    }

    if (opt.compare_polling) {
      const auto sweeps = core::run_polling_campaign(
          net, opt.snapshots, sim::msec(opt.interval_ms));
      stats::Summary spans;
      for (const auto& s : sweeps) {
        spans.add(static_cast<double>(s.span()));
      }
      std::cout << "\npolling baseline: " << sweeps.size()
                << " sweeps, mean first-to-last spread "
                << spans.mean() / 1e6 << "ms";
      if (!results.empty()) {
        std::cout << " (snapshots above: "
                  << sim::to_usec(results.back()->advance_span()) << "us)";
      }
      std::cout << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
