// Quickstart: build a small network, run traffic, take one synchronized
// network snapshot with channel state, and read a causally consistent
// network-wide packet count out of it.
//
//   $ ./quickstart
#include <iostream>

#include "core/network.hpp"
#include "net/topology.hpp"
#include "workload/basic.hpp"

int main() {
  using namespace speedlight;

  // 1. Describe a topology — the paper's testbed: 2 leaves x 3 hosts,
  //    2 spines (Figure 8) — and pick the snapshot variant.
  core::NetworkOptions options;
  options.seed = 42;
  options.snapshot.channel_state = true;          // Record in-flight packets.
  options.metric = sw::MetricKind::PacketCount;   // What to snapshot.
  core::Network net(net::make_leaf_spine(2, 2, 3), options);

  // 2. Put some traffic on it: every host streams to a peer across the
  //    fabric.
  std::vector<std::unique_ptr<wl::Generator>> gens;
  for (std::size_t h = 0; h < net.num_hosts(); ++h) {
    auto gen = std::make_unique<wl::CbrGenerator>(
        net.simulator(), net.host(h),
        net.host_id((h + 3) % net.num_hosts()),
        /*flow=*/static_cast<net::FlowId>(h + 1),
        /*rate=*/2e9, /*packet=*/1500);
    gen->start(net.now());
    gens.push_back(std::move(gen));
  }
  net.run_for(sim::msec(5));

  // 3. Take a synchronized network snapshot (the observer schedules it
  //    with every switch control plane; PTP-aligned initiation, Chandy-
  //    Lamport-style consistency in the data plane).
  const snap::GlobalSnapshot* snapshot = net.take_snapshot();
  if (snapshot == nullptr || !snapshot->complete) {
    std::cerr << "snapshot did not complete\n";
    return 1;
  }

  // 4. Use it.
  std::cout << "Snapshot " << snapshot->id << " complete.\n"
            << "  units reporting:      " << snapshot->reports.size() << "\n"
            << "  all consistent:       "
            << (snapshot->all_consistent() ? "yes" : "no") << "\n"
            << "  synchronization span: " << sim::to_usec(snapshot->advance_span())
            << " us (all units snapshotted within this window)\n"
            << "  packets counted:      " << snapshot->total_value(false)
            << " at units + " << snapshot->total_value(true) - snapshot->total_value(false)
            << " in flight\n\n";

  std::cout << "Per-unit values (switch/port/direction = packets):\n";
  for (net::NodeId swid = 0; swid < net.num_switches(); ++swid) {
    std::cout << "  " << net.switch_at(swid).name() << ":";
    const auto ports = net.switch_at(swid).options().num_ports;
    for (net::PortId p = 0; p < ports; ++p) {
      const auto it =
          snapshot->reports.find({swid, p, net::Direction::Ingress});
      if (it != snapshot->reports.end()) {
        std::cout << " " << it->second.local_value;
      }
    }
    std::cout << "\n";
  }

  // 5. Compare with what the traditional baseline would have seen: a
  //    sequential polling sweep spans milliseconds, not microseconds.
  net.register_all_units_for_polling();
  net.poller().sweep_at(net.now() + sim::msec(1), [](poll::PollSweep sweep) {
    std::cout << "\nA polling sweep of the same units spans "
              << sim::to_msec(sweep.span())
              << " ms first-to-last — the snapshot above spans microseconds.\n";
  });
  net.run_for(sim::msec(20));
  return 0;
}
