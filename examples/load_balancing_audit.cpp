// Is my load balancer actually balancing? (Section 2.2, question 1.)
//
// Runs the same bursty shuffle workload over ECMP and flowlet switching
// and audits uplink balance with synchronized snapshots of the EWMA of
// packet interarrival — the question asynchronous polling cannot answer.
//
//   $ ./load_balancing_audit
#include <iostream>
#include <memory>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "net/topology.hpp"
#include "stats/cdf.hpp"
#include "stats/summary.hpp"
#include "workload/apps.hpp"

namespace {

using namespace speedlight;

stats::Cdf audit(sw::LoadBalancerKind lb) {
  core::NetworkOptions options;
  options.seed = 7;
  options.metric = sw::MetricKind::EwmaInterarrival;
  options.load_balancer = lb;
  core::Network net(net::make_leaf_spine(2, 2, 3), options);

  // A Hadoop-like shuffle: bursty, heavy, unsynchronized.
  std::vector<net::Host*> mappers{&net.host(0), &net.host(1), &net.host(2)};
  std::vector<net::Host*> reducers{&net.host(3), &net.host(4), &net.host(5)};
  wl::HadoopGenerator::Options ho;
  ho.shuffle_bytes_per_reducer = 1 << 20;
  ho.compute_mean = sim::msec(40);
  wl::HadoopGenerator gen(net.simulator(), mappers, reducers, ho, sim::Rng(7));
  gen.start(net.now());
  net.run_for(sim::msec(50));

  // Audit: 100 snapshots; per snapshot, the standard deviation of the two
  // uplink EWMAs on each leaf. A balanced fabric keeps this near zero.
  const std::vector<net::UnitId> leaf0 = {{0, 3, net::Direction::Egress},
                                          {0, 4, net::Direction::Egress}};
  const std::vector<net::UnitId> leaf1 = {{1, 3, net::Direction::Egress},
                                          {1, 4, net::Direction::Egress}};
  const auto campaign = core::run_snapshot_campaign(net, 100, sim::msec(8));
  stats::Cdf imbalance;
  std::vector<double> values;
  for (const auto* snap : campaign.results(net)) {
    for (const auto* uplinks : {&leaf0, &leaf1}) {
      if (core::extract_values(*snap, *uplinks, values)) {
        imbalance.add(stats::stddev_of(values));
      }
    }
  }
  return imbalance;
}

}  // namespace

int main() {
  std::cout << "Auditing uplink load balance under a bursty shuffle "
               "workload...\n\n";

  const stats::Cdf ecmp = audit(sw::LoadBalancerKind::Ecmp);
  const stats::Cdf flowlet = audit(sw::LoadBalancerKind::Flowlet);

  ecmp.print(std::cout, "ECMP      — stddev of uplink EWMA interarrival",
             1e-6, "ms", 10);
  std::cout << "\n";
  flowlet.print(std::cout, "Flowlet   — stddev of uplink EWMA interarrival",
                1e-6, "ms", 10);

  const double gain = ecmp.median() / std::max(flowlet.median(), 1.0);
  std::cout << "\nVerdict: flowlet switching reduces median uplink imbalance "
            << gain << "x on this workload.\n"
            << "Room for improvement under ECMP: its p99 imbalance is "
            << ecmp.percentile(0.99) / 1e6 << " ms of interarrival skew.\n";
  return 0;
}
