// Where should we add capacity? (Section 2.2, question 2.)
//
// Snapshots of instantaneous queue depth across the whole network at one
// instant distinguish "one hot link needs an upgrade" from "load is spread
// and a parallel path would help" — the distinction averages hide.
//
//   $ ./queue_depth_monitor
#include <iomanip>
#include <iostream>
#include <vector>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "net/topology.hpp"
#include "stats/summary.hpp"
#include "workload/apps.hpp"

int main() {
  using namespace speedlight;

  core::NetworkOptions options;
  options.seed = 5;
  options.metric = sw::MetricKind::QueueDepth;
  options.queue_capacity = 512;
  core::Network net(net::make_leaf_spine(2, 2, 3), options);

  // An incast-prone workload: everyone answers host 0 at once.
  std::vector<net::Host*> clients{&net.host(0)};
  std::vector<net::Host*> servers;
  for (std::size_t h = 1; h < 6; ++h) servers.push_back(&net.host(h));
  wl::MemcacheGenerator::Options mo;
  mo.requests_per_second = 8000;
  mo.keys_per_multiget = 5;
  mo.value_size = 24000;  // 16 MTUs per server: a real response burst.
  wl::MemcacheGenerator gen(net.simulator(), clients, servers, mo, sim::Rng(5));
  gen.start(net.now());
  net.run_for(sim::msec(20));

  // One snapshot per 250us for 40ms: a coherent movie of queue occupancy.
  const auto campaign = core::run_snapshot_campaign(net, 160, sim::usec(250));
  const auto results = campaign.results(net);
  std::cout << "Collected " << results.size()
            << " consistent whole-network queue-depth snapshots.\n\n";

  // Aggregate per egress unit.
  struct PortStat {
    std::string label;
    stats::Summary depth;
  };
  std::vector<net::UnitId> units;
  std::vector<PortStat> port_stats;
  for (net::NodeId swid = 0; swid < net.num_switches(); ++swid) {
    for (net::PortId p = 0; p < net.switch_at(swid).options().num_ports; ++p) {
      units.push_back({swid, p, net::Direction::Egress});
      port_stats.push_back({net.switch_at(swid).name() + " port " +
                                std::to_string(p),
                            {}});
    }
  }
  std::vector<double> row;
  std::size_t concurrently_loaded_max = 0;
  for (const auto* snap : results) {
    if (!core::extract_values(*snap, units, row)) continue;
    std::size_t loaded = 0;
    for (std::size_t i = 0; i < row.size(); ++i) {
      port_stats[i].depth.add(row[i]);
      loaded += row[i] > 8;
    }
    concurrently_loaded_max = std::max(concurrently_loaded_max, loaded);
  }

  std::cout << "Per-port queue occupancy over the campaign (packets):\n";
  std::cout << "  " << std::left << std::setw(18) << "port" << std::right
            << std::setw(8) << "mean" << std::setw(8) << "max" << "\n";
  double hottest = 0.0;
  std::string hottest_label;
  for (const auto& ps : port_stats) {
    if (ps.depth.max() == 0) continue;  // Quiet ports elided.
    std::cout << "  " << std::left << std::setw(18) << ps.label << std::right
              << std::setw(8) << std::fixed << std::setprecision(1)
              << ps.depth.mean() << std::setw(8) << std::setprecision(0)
              << ps.depth.max() << "\n";
    if (ps.depth.max() > hottest) {
      hottest = ps.depth.max();
      hottest_label = ps.label;
    }
  }

  std::cout << "\nHotspot: " << hottest_label << " (peak " << hottest
            << " packets queued).\n"
            << "At most " << concurrently_loaded_max
            << " ports were loaded *simultaneously* — ";
  if (concurrently_loaded_max <= 2) {
    std::cout << "congestion is localized: upgrade that link; a parallel "
                 "path would sit idle.\n";
  } else {
    std::cout << "load is spread: adding parallel paths would help.\n";
  }
  return 0;
}
