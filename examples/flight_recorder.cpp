// Flight recorder walkthrough: run the testbed topology with tracing on,
// take one snapshot, and read its causal timeline back out — initiation,
// per-unit register capture, notification, CPU processing, and observer
// collection — plus the registry dump and a Perfetto-loadable trace file.
//
//   $ ./flight_recorder
//   (then open flight_recorder_trace.json in ui.perfetto.dev)
#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "core/network.hpp"
#include "net/topology.hpp"
#include "workload/basic.hpp"

int main() {
  using namespace speedlight;

  if (!obs::Tracer::compiled_in()) {
    std::cout << "built with SPEEDLIGHT_TRACE=OFF; nothing to record\n";
    return 0;
  }

  // The paper's testbed (Figure 8): 2 leaves x 3 hosts, 2 spines, with
  // channel state on. enable_tracing() must precede the snapshot so the
  // ring sees the whole story.
  core::NetworkOptions options;
  options.seed = 7;
  options.snapshot.channel_state = true;
  core::Network net(net::make_leaf_spine(2, 2, 3), options);
  net.enable_tracing();

  std::vector<std::unique_ptr<wl::Generator>> gens;
  for (std::size_t h = 0; h < net.num_hosts(); ++h) {
    auto gen = std::make_unique<wl::PoissonGenerator>(
        net.simulator(), net.host(h),
        std::vector<net::NodeId>{net.host_id((h + 3) % net.num_hosts())},
        /*pps=*/20000, /*bytes=*/1000, sim::Rng(100 + h));
    gen->start(net.now());
    gens.push_back(std::move(gen));
  }
  net.run_for(sim::msec(2));

  const snap::GlobalSnapshot* snapshot = net.take_snapshot();
  if (snapshot == nullptr || !snapshot->complete) {
    std::cerr << "snapshot did not complete\n";
    return 1;
  }

  // Reconstruct the snapshot's causal chain from the trace ring.
  const obs::SnapshotTimeline tl = net.snapshot_timeline(snapshot->id);
  std::cout << "Snapshot " << tl.sid << " timeline ("
            << tl.units.size() << " units, " << tl.complete_units()
            << " with all five stages):\n"
            << "  requested " << tl.requested << " ns, initiated "
            << tl.initiated << " ns, completed " << tl.completed << " ns\n"
            << "  causally ordered:  "
            << (tl.causally_ordered() ? "yes" : "NO") << "\n"
            << "  capture skew:      " << sim::to_usec(tl.capture_skew())
            << " us  (Figure 9's synchronization)\n"
            << "  end to end:        " << sim::to_usec(tl.end_to_end())
            << " us\n"
            << "  mean capture->notify " << tl.mean_capture_to_notify()
            << " ns, notify->cpu " << tl.mean_notify_to_cpu()
            << " ns, cpu->collect " << tl.mean_cpu_to_collect() << " ns\n\n";

  std::cout << "Per-unit stages (ns):\n"
            << "  unit          capture      notify     cpu         collect\n";
  for (const auto& u : tl.units) {
    std::cout << "  s" << u.unit.node << "p" << static_cast<int>(u.unit.port)
              << (u.unit.direction == net::Direction::Ingress ? "/in " : "/out")
              << std::setw(13) << u.capture << std::setw(12) << u.notify
              << std::setw(12) << u.cpu_process << std::setw(12) << u.collect
              << (u.complete() ? "" : "   (partial)") << "\n";
  }

  // The same counters every bench embeds in its JSON report.
  std::cout << "\nMetrics registry dump:\n";
  net.metrics().write_json(std::cout, 0);
  std::cout << "\n";

  // And the visual version, for ui.perfetto.dev / chrome://tracing.
  const char* path = "flight_recorder_trace.json";
  if (net.export_chrome_trace(path)) {
    std::cout << "\nWrote " << path << " (" << net.tracer().size()
              << " trace records, " << net.tracer().overwritten()
              << " overwritten)\n";
  }
  return 0;
}
