// What is the global forwarding state? (Section 2.2, question 4;
// Section 10, "Measuring Forwarding State".)
//
// During a routing update, two switches can transiently point at each
// other — a forwarding loop that asynchronous per-device dumps cannot
// prove (each table looks fine at the time it is read). A *consistent*
// snapshot of per-unit FIB-version registers shows which rule versions
// were active simultaneously; combining them with the version history
// proves (or rules out) the loop.
//
//   $ ./forwarding_loop_detection
#include <iostream>
#include <map>
#include <vector>

#include "core/network.hpp"
#include "net/topology.hpp"
#include "workload/basic.hpp"

int main() {
  using namespace speedlight;

  core::NetworkOptions options;
  options.seed = 3;
  options.metric = sw::MetricKind::ForwardingVersion;
  // Chain: h0 - s0 - s1 - s2 - h1.
  core::Network net(net::make_line(3), options);

  // Version history per switch: version -> next hop for h1, maintained by
  // the (simulated) routing controller as it pushes updates.
  using NextHop = std::map<std::uint64_t, net::PortId>;
  std::vector<NextHop> history(net.num_switches());
  for (std::size_t s = 0; s < net.num_switches(); ++s) {
    const auto& ports = net.switch_at(s).routing().lookup(net.host_id(1));
    history[s][net.switch_at(s).routing().version()] =
        ports.empty() ? net::kInvalidPort : ports[0];
  }

  // Keep traffic flowing towards h1 so FIB versions are stamped.
  wl::CbrGenerator gen(net.simulator(), net.host(0), net.host_id(1), 1, 1e9,
                       500);
  gen.start(net.now());
  net.run_for(sim::msec(2));

  // A buggy update: s1 is re-pointed *backwards* towards s0 (port 1)
  // while s0 still forwards to s1 (port 2) -> transient loop s0 <-> s1.
  net.simulator().at(net.now() + sim::msec(3), [&net, &history]() {
    net.switch_at(1).set_route(net.host_id(1), {1});
    history[1][net.switch_at(1).routing().version()] = 1;
    std::cout << "[controller] pushed buggy update to s1 (now points back "
                 "at s0)\n";
  });
  // The fix arrives a little later.
  net.simulator().at(net.now() + sim::msec(9), [&net, &history]() {
    net.switch_at(1).set_route(net.host_id(1), {2});
    history[1][net.switch_at(1).routing().version()] = 2;
    std::cout << "[controller] pushed fix to s1\n";
  });

  // Meanwhile: snapshots of the FIB-version registers every 2ms.
  auto loop_check = [&](const snap::GlobalSnapshot& snap) {
    // Reconstruct the consistent forwarding graph for h1.
    std::vector<net::PortId> next_hop(net.num_switches(), net::kInvalidPort);
    for (std::size_t s = 0; s < net.num_switches(); ++s) {
      // Any ingress unit of the switch carries the last-stamped version.
      for (net::PortId p = 0; p < net.switch_at(s).options().num_ports; ++p) {
        const auto it = snap.reports.find(
            {static_cast<net::NodeId>(s), p, net::Direction::Ingress});
        if (it == snap.reports.end() || !it->second.consistent) continue;
        const auto v = it->second.local_value;
        const auto h = history[s].find(v);
        if (h != history[s].end()) next_hop[s] = h->second;
      }
    }
    // Walk from s0; a revisit is a loop. (Line topology: port 2 = right
    // neighbor, port 1 = left neighbor, port 0 = host.)
    std::vector<bool> seen(net.num_switches(), false);
    std::size_t at = 0;
    while (true) {
      if (seen[at]) return true;  // Loop!
      seen[at] = true;
      const net::PortId out = next_hop[at];
      if (out == net::kInvalidPort || out == 0) return false;  // Host/unknown.
      if (out == 2 && at + 1 < net.num_switches()) {
        ++at;
      } else if (out == 1 && at > 0) {
        --at;
      } else {
        return false;
      }
    }
  };

  int loops_detected = 0;
  int snapshots_done = 0;
  net.observer().set_completion_callback(
      [&](const snap::GlobalSnapshot& snap) {
        ++snapshots_done;
        const bool loop = loop_check(snap);
        loops_detected += loop;
        std::cout << "[observer] snapshot " << snap.id << " @ "
                  << sim::to_msec(snap.scheduled_at) << "ms: forwarding "
                  << (loop ? "LOOP s0<->s1 detected" : "state consistent")
                  << "\n";
      });
  for (int i = 0; i < 8; ++i) {
    net.observer().request_snapshot(net.now() + sim::msec(1) +
                                    i * sim::msec(2));
  }
  net.run_for(sim::msec(40));

  std::cout << "\n" << snapshots_done << " snapshots taken, " << loops_detected
            << " caught the transient loop; " << net.switch_at(0).ttl_drops() +
                   net.switch_at(1).ttl_drops()
            << " packets died of TTL while it existed.\n"
            << (loops_detected > 0
                    ? "A consistent snapshot PROVES the loop: both rule "
                      "versions were active at one instant.\n"
                    : "No loop observed in any consistent snapshot.\n");
  return loops_detected > 0 ? 0 : 1;
}
