// Partial deployment (Section 10): only some switches speak the snapshot
// protocol. Headers are added at the first enabled router, pass through
// legacy transit switches untouched, and are stripped before hosts;
// snapshots cover the enabled devices and the logical channels between
// them — consistently, even across a legacy middle hop.
//
//   $ ./partial_deployment
#include <iostream>

#include "core/network.hpp"
#include "net/topology_io.hpp"
#include "workload/basic.hpp"

int main() {
  using namespace speedlight;

  // An aggregation row where only the edge switches are upgraded; the
  // legacy core switch in the middle forwards blindly.
  const std::string topo = R"(
host_links 25 500
switch edge0  3
switch core   2 disabled
switch edge1  3
host client edge0 0
host server edge1 0
trunk edge0 2 core 0
trunk core 1 edge1 2
)";
  core::NetworkOptions opt;
  opt.snapshot.channel_state = true;
  // The edge0 <-> edge1 logical channel stays FIFO through the single
  // legacy hop, so markers (and channel state) survive transit (Section
  // 10's condition).
  opt.transit_neighbors_carry_markers = true;
  core::Network net(net::topology_from_string(topo), opt);

  wl::CbrGenerator up(net.simulator(), net.host(0), net.host_id(1), 1, 4e9,
                      1400);
  wl::CbrGenerator down(net.simulator(), net.host(1), net.host_id(0), 2, 2e9,
                        1400);
  up.start(net.now());
  down.start(net.now());
  net.run_for(sim::msec(5));

  const auto* snap = net.take_snapshot();
  if (snap == nullptr || !snap->complete) {
    std::cerr << "snapshot failed\n";
    return 1;
  }

  std::cout << "Deployment: edge0 + edge1 snapshot-enabled, core legacy.\n"
            << "Snapshot " << snap->id << ": " << snap->reports.size()
            << " units reported (the legacy core contributes none), all "
            << (snap->all_consistent() ? "consistent" : "INCONSISTENT")
            << ".\n\n";

  // The headline property survives the legacy hop: counts at edge0's
  // trunk egress match edge1's trunk ingress plus in-flight state on the
  // *logical* channel spanning the core.
  const auto eg = snap->reports.find({0, 2, net::Direction::Egress});
  const auto in = snap->reports.find({2, 2, net::Direction::Ingress});
  if (eg == snap->reports.end() || in == snap->reports.end()) {
    std::cerr << "missing reports\n";
    return 1;
  }
  std::cout << "edge0 trunk egress counted:  " << eg->second.local_value
            << " packets pre-snapshot\n"
            << "edge1 trunk ingress counted: " << in->second.local_value
            << " packets + " << in->second.channel_value
            << " in flight across the legacy core\n"
            << "conservation: "
            << (eg->second.local_value ==
                        in->second.local_value + in->second.channel_value
                    ? "EXACT"
                    : "VIOLATED")
            << "\n\n";

  std::cout << "Hosts saw " << net.host(0).header_leaks() +
                   net.host(1).header_leaks()
            << " leaked snapshot headers (must be 0: stripped at the last "
               "enabled device).\n";
  return eg->second.local_value ==
                 in->second.local_value + in->second.channel_value
             ? 0
             : 1;
}
