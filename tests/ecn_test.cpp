// ECN marking at egress queues, and snapshotting the mark counters (the
// metric-agnosticism claim: "any value accessible at line rate ... can be
// snapshotted").
#include <gtest/gtest.h>

#include "core/network.hpp"
#include "net/topology.hpp"
#include "workload/basic.hpp"

namespace speedlight {
namespace {

using core::Network;
using core::NetworkOptions;

NetworkOptions congested_options() {
  NetworkOptions opt;
  opt.ecn_threshold = 8;
  opt.metric = sw::MetricKind::EcnMarkCount;
  return opt;
}

void blast(Network& net, std::size_t from_a, std::size_t from_b,
           std::size_t to, int packets) {
  for (int i = 0; i < packets; ++i) {
    net.simulator().at(i * sim::nsec(490), [&net, from_a, from_b, to]() {
      net.host(from_a).send(net.host_id(to), 1, 1500);
      net.host(from_b).send(net.host_id(to), 2, 1500);
    });
  }
}

TEST(Ecn, MarksWhenQueueExceedsThreshold) {
  Network net(net::make_star(3), congested_options());
  std::uint64_t marked = 0;
  std::uint64_t received = 0;
  net.host(2).set_receive_callback([&](const net::Packet& p, sim::SimTime) {
    ++received;
    marked += p.ecn_ce;
  });
  blast(net, 0, 1, 2, 600);  // 2x25G into one 25G host port.
  net.run_for(sim::msec(5));
  EXPECT_GT(received, 1000u);
  EXPECT_GT(marked, 100u);          // Sustained congestion -> many CE marks.
  EXPECT_LT(marked, received);      // Early packets pass unmarked.
  EXPECT_EQ(net.switch_at(0).counters(2, net::Direction::Egress).ecn_marks(),
            marked);
}

TEST(Ecn, NoMarksWithoutCongestion) {
  Network net(net::make_star(2), congested_options());
  std::uint64_t marked = 0;
  net.host(1).set_receive_callback(
      [&](const net::Packet& p, sim::SimTime) { marked += p.ecn_ce; });
  for (int i = 0; i < 100; ++i) {
    net.simulator().at(i * sim::usec(10),
                       [&net]() { net.host(0).send(net.host_id(1), 1, 1500); });
  }
  net.run_for(sim::msec(5));
  EXPECT_EQ(marked, 0u);
}

TEST(Ecn, DisabledByDefault) {
  NetworkOptions opt;  // ecn_threshold = 0.
  Network net(net::make_star(3), opt);
  std::uint64_t marked = 0;
  net.host(2).set_receive_callback(
      [&](const net::Packet& p, sim::SimTime) { marked += p.ecn_ce; });
  blast(net, 0, 1, 2, 300);
  net.run_for(sim::msec(5));
  EXPECT_EQ(marked, 0u);
}

TEST(Ecn, MarkCountersSnapshotConsistently) {
  // A network-wide, causally consistent view of where congestion marks are
  // being applied — a metric the paper never shows but the primitive
  // supports unchanged.
  Network net(net::make_star(3), congested_options());
  blast(net, 0, 1, 2, 600);
  net.run_for(sim::msec(3));
  const auto* snap = net.take_snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->complete);
  EXPECT_TRUE(snap->all_consistent());
  const auto it = snap->reports.find({0, 2, net::Direction::Egress});
  ASSERT_NE(it, snap->reports.end());
  EXPECT_GT(it->second.local_value, 50u);  // Marks visible in the snapshot.
  // Only the congested egress unit marks; others report zero.
  const auto quiet = snap->reports.find({0, 0, net::Direction::Egress});
  ASSERT_NE(quiet, snap->reports.end());
  EXPECT_EQ(quiet->second.local_value, 0u);
}

}  // namespace
}  // namespace speedlight
