// The periodic snapshotter: continuous monitoring with backpressure.
#include <gtest/gtest.h>

#include "core/network.hpp"
#include "net/topology.hpp"
#include "snapshot/periodic.hpp"

namespace speedlight {
namespace {

using core::Network;
using core::NetworkOptions;

TEST(PeriodicSnapshotter, DeliversSteadyStream) {
  Network net(net::make_leaf_spine(2, 2, 2), NetworkOptions{});
  std::vector<snap::VirtualSid> seen;
  snap::PeriodicSnapshotter mon(net.simulator(), net.observer(), sim::msec(5),
                                [&](const snap::GlobalSnapshot& s) {
                                  seen.push_back(s.id);
                                });
  mon.start(net.now() + sim::msec(1));
  net.run_for(sim::msec(120));
  mon.stop();
  EXPECT_GE(seen.size(), 20u);
  EXPECT_EQ(mon.backpressured(), 0u);
  EXPECT_EQ(mon.completed(), seen.size());
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], seen[i - 1] + 1);  // In order, no gaps.
  }
}

TEST(PeriodicSnapshotter, BackpressuresWhenWindowTight) {
  // A 2-bit id space with channel state completing on ~5ms re-init rounds
  // cannot sustain a 1ms cadence: ticks must be refused, never queued.
  NetworkOptions opt;
  opt.snapshot.channel_state = true;
  opt.snapshot.wire_id_modulus = 4;  // Window = 3.
  opt.force_probe_liveness = false;  // Slow completion (re-init only).
  opt.control.probe_on_reinitiate = true;
  Network net(net::make_line(2), opt);
  snap::PeriodicSnapshotter mon(net.simulator(), net.observer(), sim::msec(1),
                                nullptr);
  mon.start(net.now() + sim::msec(1));
  net.run_for(sim::msec(60));
  mon.stop();
  EXPECT_GT(mon.backpressured(), 5u);
  EXPECT_GT(mon.completed(), 2u);
  // Backpressure keeps the live spread within the window: everything that
  // was accepted eventually completes.
  net.run_for(sim::msec(200));
  EXPECT_EQ(net.observer().completed_count(), mon.requested());
}

TEST(PeriodicSnapshotter, StopHaltsTicks) {
  Network net(net::make_star(2), NetworkOptions{});
  snap::PeriodicSnapshotter mon(net.simulator(), net.observer(), sim::msec(2),
                                nullptr);
  mon.start(net.now());
  net.run_for(sim::msec(11));
  mon.stop();
  const auto at_stop = mon.requested();
  EXPECT_GE(at_stop, 4u);
  net.run_for(sim::msec(50));
  EXPECT_EQ(mon.requested(), at_stop);
}

}  // namespace
}  // namespace speedlight
