// Engine round profiler (obs/prof.hpp): ring semantics, exact blame
// attribution against the engine's own counters, report folding, and a
// Threads-mode recording smoke. Suite names start with ParallelProfiler so
// the TSan CI job (-R '(Parallel|...)') picks up the concurrent tests.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "net/topology.hpp"
#include "obs/prof.hpp"
#include "sim/parallel.hpp"
#include "sim/time.hpp"

namespace speedlight {
namespace {

obs::RoundRecord window(sim::SimTime m, sim::SimTime h, std::uint64_t exec) {
  obs::RoundRecord r;
  r.m = m;
  r.horizon = h;
  r.executed = exec;
  r.binding = obs::Binding::Until;
  r.ran = true;
  return r;
}

obs::RoundRecord stall(sim::SimTime m, sim::SimTime h, std::uint32_t producer,
                       obs::Binding b = obs::Binding::Peer) {
  obs::RoundRecord r;
  r.m = m;
  r.horizon = h;
  r.binding_shard = producer;
  r.binding = b;
  r.ran = false;
  return r;
}

TEST(ParallelProfilerRing, CoalescesRepeatedStallEpisodes) {
  obs::ShardProfiler p;
  p.configure(0, 4, 16);
  // One episode: same pending event (m = 100), same binding — the horizon
  // closes in as the producer advances. Retained as ONE record keeping the
  // earliest horizon, while aggregates count every round.
  p.record_round(stall(100, 40, 2));
  p.record_round(stall(100, 60, 2));
  p.record_round(stall(100, 90, 2));
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.stalls(), 3u);
  EXPECT_EQ(p.stalls_by_producer()[2], 3u);
  EXPECT_EQ(p.gap_by_producer()[2], (100u - 40) + (100 - 60) + (100 - 90));
  std::vector<obs::RoundRecord> got;
  p.for_each([&](const obs::RoundRecord& r) { got.push_back(r); });
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].repeats, 3u);
  EXPECT_EQ(got[0].horizon, 40u);  // Widest (earliest) horizon retained.

  // A different pending event or binding producer starts a new episode.
  p.record_round(stall(200, 150, 2));
  p.record_round(stall(200, 160, 1));
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.stalls(), 5u);

  // Windows never coalesce and break the episode chain.
  p.record_round(window(210, 300, 7));
  p.record_round(stall(400, 350, 1));
  p.record_round(stall(400, 360, 1));
  EXPECT_EQ(p.size(), 5u);
  EXPECT_EQ(p.windows(), 1u);
  EXPECT_EQ(p.executed(), 7u);
}

TEST(ParallelProfilerRing, SelfCycleStallsLandOnTheDiagonal) {
  obs::ShardProfiler p;
  p.configure(1, 2, 8);
  p.record_round(stall(100, 80, 1, obs::Binding::SelfCycle));
  p.record_round(stall(100, 90, 1, obs::Binding::SelfCycle));
  EXPECT_EQ(p.stalls(), 2u);
  EXPECT_EQ(p.self_stalls(), 2u);
  EXPECT_EQ(p.stalls_by_producer()[1], 2u);  // Own index, not a peer's.
  EXPECT_EQ(p.size(), 1u);                   // Coalesced like any episode.
}

TEST(ParallelProfilerRing, BoundedRingKeepsNewestAndExactAggregates) {
  obs::ShardProfiler p;
  p.configure(0, 2, 4);
  const std::size_t kRounds = 100;
  for (std::size_t i = 0; i < kRounds; ++i) {
    p.record_round(window(10 * i, 10 * i + 5, /*exec=*/i));
  }
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.overwritten(), kRounds - 4);
  EXPECT_EQ(p.windows(), kRounds);  // Aggregates survive the wrap.
  std::uint64_t expected_exec = 0;
  for (std::size_t i = 0; i < kRounds; ++i) expected_exec += i;
  EXPECT_EQ(p.executed(), expected_exec);
  // Oldest-to-newest visitation over the retained suffix.
  std::vector<std::uint64_t> kept;
  p.for_each([&](const obs::RoundRecord& r) { kept.push_back(r.executed); });
  EXPECT_EQ(kept, (std::vector<std::uint64_t>{96, 97, 98, 99}));
}

TEST(ParallelProfilerReport, AnalyzeFoldsShardsAndRanksChannels) {
  obs::EngineProfiler prof;
  prof.enable(/*num_shards=*/3, /*capacity_per_shard=*/8);
  if (!prof.enabled()) GTEST_SKIP() << "trace layer compiled out";
  // Shard 0: 2 windows of 5 events; stalled twice on shard 2, once on 1.
  prof.shard(0).record_round(window(0, 10, 5));
  prof.shard(0).record_round(window(20, 30, 5));
  prof.shard(0).record_round(stall(40, 35, 2));
  prof.shard(0).record_round(stall(50, 45, 2));
  prof.shard(0).record_round(stall(60, 55, 1));
  // Shard 1: one window; one self-cycle stall.
  prof.shard(1).record_round(window(0, 10, 3));
  prof.shard(1).record_round(stall(20, 15, 1, obs::Binding::SelfCycle));
  // Two aligned sweeps with per-round maxima 5 and 3.
  prof.note_inline_round(5);
  prof.note_inline_round(3);

  const obs::CriticalPathReport rep = obs::analyze(prof);
  EXPECT_EQ(rep.shards, 3u);
  EXPECT_EQ(rep.windows, 3u);
  EXPECT_EQ(rep.stalls, 4u);
  EXPECT_EQ(rep.executed, 13u);
  EXPECT_TRUE(rep.rounds_aligned);
  EXPECT_EQ(rep.critical_path_events, 8u);
  EXPECT_NEAR(rep.parallelism_bound(), 13.0 / 8.0, 1e-12);
  EXPECT_EQ(rep.stall(0, 2), 2u);
  EXPECT_EQ(rep.stall(0, 1), 1u);
  EXPECT_EQ(rep.stall(1, 1), 1u);  // Self-cycle on the diagonal.

  const auto top = rep.top_channels(8);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].from, 2u);  // Most-blamed producer first.
  EXPECT_EQ(top[0].to, 0u);
  EXPECT_EQ(top[0].stalls, 2u);

  std::ostringstream os;
  rep.write_json(os, 2);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"stall_matrix\""), std::string::npos);
  EXPECT_NE(json.find("\"critical_path_events\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"top_channels\""), std::string::npos);
}

/// Two leaf-spine sites joined by one slow WAN trunk — the same shape the
/// perf_parallel bench partitions into one shard per site.
net::TopologySpec make_two_site_spec() {
  const net::TopologySpec site = net::make_leaf_spine(2, 2, 2);
  net::TopologySpec spec = site;
  const std::size_t off = site.switches.size();
  for (auto sw : site.switches) {
    sw.name = "b_" + sw.name;
    spec.switches.push_back(sw);
  }
  for (auto h : site.hosts) {
    h.name = "b_" + h.name;
    h.attached_switch += off;
    spec.hosts.push_back(h);
  }
  for (auto t : site.trunks) {
    t.switch_a += off;
    t.switch_b += off;
    spec.trunks.push_back(t);
  }
  const std::size_t spine_a = 2;
  const std::size_t spine_b = off + 2;
  const auto pa = spec.switches[spine_a].num_ports++;
  const auto pb = spec.switches[spine_b].num_ports++;
  spec.trunks.push_back({spine_a, static_cast<net::PortId>(pa), spine_b,
                         static_cast<net::PortId>(pb), 100e9, sim::usec(50)});
  return spec;
}

/// Golden attribution test: on the two-site topology at two shards, the
/// profiler's blame matrix must agree ROUND-FOR-ROUND with the engine's
/// own stall accounting, and every cross-shard stall is by construction
/// the WAN trunk (the only inter-site coupling) binding one site on the
/// other — the matrix' off-diagonal IS the WAN channel.
TEST(ParallelProfilerGolden, TwoSiteInlineAttributionMatchesEngineStats) {
  if (!obs::EngineProfiler::compiled_in()) {
    GTEST_SKIP() << "trace layer compiled out";
  }
  core::NetworkOptions opt;
  opt.seed = 901;
  opt.shards = 2;
  opt.exec_mode = core::NetworkOptions::ExecMode::Inline;
  core::Network net(make_two_site_spec(), opt);
  ASSERT_EQ(net.num_shards(), 2u);
  net.enable_engine_profiling();
  const auto campaign = core::run_snapshot_campaign(net, 3, sim::msec(2));
  EXPECT_FALSE(campaign.results(net).empty());

  const sim::ParallelEngine* eng = net.engine();
  ASSERT_NE(eng, nullptr);
  const obs::EngineProfiler* prof = net.engine_profiler();
  ASSERT_NE(prof, nullptr);
  ASSERT_TRUE(prof->enabled());
  const sim::EngineRunStats& er = eng->last_run();

  std::uint64_t total_executed = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    const obs::ShardProfiler& sp = prof->shard(i);
    const sim::ShardRunStats& st = er.shards[i];
    EXPECT_EQ(sp.windows(), st.windows) << "shard " << i;
    EXPECT_EQ(sp.stalls(), st.horizon_stalls) << "shard " << i;
    EXPECT_EQ(sp.executed(), st.executed) << "shard " << i;
    // Peer attribution matches the engine's per-producer counters exactly;
    // the diagonal holds the profiler-only self-cycle split.
    const std::size_t peer = 1 - i;
    EXPECT_EQ(sp.stalls_by_producer()[peer], st.stalls_by_producer[peer])
        << "shard " << i;
    EXPECT_EQ(sp.stalls_by_producer()[i], sp.self_stalls()) << "shard " << i;
    total_executed += st.executed;
  }

  const obs::CriticalPathReport rep = obs::analyze(*prof);
  EXPECT_EQ(rep.executed, total_executed);
  EXPECT_EQ(rep.stalls, er.horizon_stalls());
  EXPECT_TRUE(rep.rounds_aligned);
  // The inline sweeps' per-round maxima sum to at least the busiest
  // shard's events and at most the whole run.
  EXPECT_GE(rep.critical_path_events,
            std::max(er.shards[0].executed, er.shards[1].executed));
  EXPECT_LE(rep.critical_path_events, rep.executed);

  // WAN dominance: with one shard per site, every peer stall crosses the
  // WAN trunk, so the top binding channel is an off-diagonal entry and
  // carries every cross-shard stall round.
  const auto top = rep.top_channels(1);
  ASSERT_FALSE(top.empty());
  EXPECT_NE(top[0].from, top[0].to);
  EXPECT_EQ(top[0].stalls,
            std::max(rep.stall(0, 1), rep.stall(1, 0)));
  EXPECT_GT(top[0].stalls, 0u);
}

/// Profiled inline runs must replay the exact event schedule of
/// unprofiled ones: recording is observation, never perturbation.
TEST(ParallelProfilerGolden, ProfiledRunIsBitIdenticalToUnprofiled) {
  if (!obs::EngineProfiler::compiled_in()) {
    GTEST_SKIP() << "trace layer compiled out";
  }
  std::vector<std::uint64_t> totals;
  for (const bool profiled : {false, true}) {
    core::NetworkOptions opt;
    opt.seed = 902;
    opt.shards = 2;
    opt.exec_mode = core::NetworkOptions::ExecMode::Inline;
    core::Network net(make_two_site_spec(), opt);
    if (profiled) net.enable_engine_profiling();
    const auto campaign = core::run_snapshot_campaign(net, 3, sim::msec(2));
    std::uint64_t total = 0;
    for (const auto* snap : campaign.results(net)) {
      total += snap->total_value(false);
      for (const auto& [unit, r] : snap->reports) {
        total ^= (r.local_value * 0x9E3779B97F4A7C15ULL) ^ unit.port;
      }
    }
    totals.push_back(total);
  }
  EXPECT_EQ(totals[0], totals[1]);
}

/// Threads-mode smoke: per-worker recording into shard-owned rings while
/// the engine runs — the TSan CI job runs this suite to prove the
/// profiler adds no races. Counters are nondeterministic across runs
/// (plan counts depend on scheduling), so only shapes are asserted.
TEST(ParallelProfilerThreads, RecordsConcurrentlyWithoutRaces) {
  if (!obs::EngineProfiler::compiled_in()) {
    GTEST_SKIP() << "trace layer compiled out";
  }
  core::NetworkOptions opt;
  opt.seed = 903;
  opt.shards = 4;
  opt.exec_mode = core::NetworkOptions::ExecMode::Threads;
  core::Network net(net::make_ring(8), opt);
  ASSERT_EQ(net.num_shards(), 4u);
  net.enable_engine_profiling(/*capacity_per_shard=*/512);
  const auto campaign = core::run_snapshot_campaign(net, 2, sim::msec(2));
  EXPECT_FALSE(campaign.results(net).empty());

  const obs::EngineProfiler* prof = net.engine_profiler();
  ASSERT_NE(prof, nullptr);
  const obs::CriticalPathReport rep = obs::analyze(*prof);
  EXPECT_GT(rep.windows, 0u);
  EXPECT_GT(rep.executed, 0u);
  EXPECT_FALSE(rep.rounds_aligned);  // Threads mode: fallback bound.
  EXPECT_GT(rep.critical_path_events, 0u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_LE(prof->shard(i).size(), 512u) << "shard " << i;
  }
}

}  // namespace
}  // namespace speedlight
