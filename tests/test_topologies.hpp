// Canonical small topology instances for the test suite, built on the
// shared family factory in src/check/topologies.hpp (the same switch the
// scenario fuzzer's generator draws from). Tests pin one size per family
// for determinism and speed; the fuzzer randomizes them.
#pragma once

#include <string>

#include "check/topologies.hpp"

namespace speedlight::testing {

using check::TopoKind;

/// The suite's standard instance of each family.
[[nodiscard]] inline net::TopologySpec make_test_topo(TopoKind k) {
  switch (k) {
    case TopoKind::Line:
      return check::make_topo(k, 3);
    case TopoKind::Ring:
      return check::make_topo(k, 4);
    case TopoKind::Star:
      return check::make_topo(k, 2);
    case TopoKind::LeafSpine:
      return check::make_topo(k, 2, 2, 2);
    case TopoKind::FatTree:
      return check::make_topo(k, 4);
    case TopoKind::Figure1:
      return check::make_topo(k, 0);
  }
  return check::make_topo(TopoKind::Star, 2);
}

/// CamelCase label for parameterized-test names.
[[nodiscard]] inline std::string test_topo_name(TopoKind k) {
  switch (k) {
    case TopoKind::Line:
      return "Line";
    case TopoKind::Ring:
      return "Ring";
    case TopoKind::Star:
      return "Star";
    case TopoKind::LeafSpine:
      return "LeafSpine";
    case TopoKind::FatTree:
      return "FatTree";
    case TopoKind::Figure1:
      return "Figure1";
  }
  return "?";
}

}  // namespace speedlight::testing
