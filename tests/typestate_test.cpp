// Register-access typestate discipline (snapshot/typestate.hpp): one RMW
// per stateful register per pipeline pass, checked at compile time. The
// rejection cases are expressed as `!requires` static_asserts — the
// ill-formed call is proven to have no viable overload without breaking the
// build, which keeps "two RMWs on one register is a compile error" itself
// under test.
#include <gtest/gtest.h>

#include <utility>

#include "resources/register_discipline.hpp"
#include "snapshot/dataplane.hpp"
#include "snapshot/typestate.hpp"

namespace speedlight::snap {
namespace {

using Sid0 = StageToken<0>;
using AfterSid = AfterAccess<0, Reg::Sid>;
using AfterSidLs = AfterAccess<AfterSid::mask, Reg::LastSeen>;
using Full = StageToken<kAllRegs>;

// --- Static structure of the token algebra ---------------------------------

static_assert(Sid0::mask == 0);
static_assert(AfterSid::mask == reg_bit(Reg::Sid));
static_assert(Full::mask == kAllRegs);
static_assert(!Sid0::accessed<Reg::Sid>);
static_assert(AfterSid::accessed<Reg::Sid>);
static_assert(!AfterSid::accessed<Reg::Value>);

// A fresh token may access anything; a spent token only what remains.
static_assert(CanAccess<Sid0, Reg::Sid>);
static_assert(CanAccess<Sid0, Reg::LastSeen>);
static_assert(!CanAccess<AfterSid, Reg::Sid>);
static_assert(CanAccess<AfterSid, Reg::LastSeen>);
static_assert(!CanAccess<Full, Reg::Sid>);
static_assert(!CanAccess<Full, Reg::LastSeen>);
static_assert(!CanAccess<Full, Reg::Value>);

// Partially-spent tokens are move-only (no duplicating a pass mid-flight);
// the fresh token is freely constructible.
static_assert(std::is_default_constructible_v<Sid0>);
static_assert(!std::is_default_constructible_v<AfterSid>);
static_assert(!std::is_copy_constructible_v<AfterSid>);
static_assert(std::is_move_constructible_v<AfterSid>);
static_assert(!std::is_copy_constructible_v<Full>);

// --- Rejection: the acceptance-criterion compile errors --------------------

template <typename RF, typename Token>
concept SecondSidRmw = requires(RF& rf, Token t) {
  rf.with_sid(std::move(t), [](VirtualSid&) {});
};
template <typename RF, typename Token>
concept SecondLastSeenRmw = requires(RF& rf, Token t) {
  rf.with_last_seen(std::move(t), std::uint16_t{0}, [](VirtualSid&) {});
};
template <typename RF, typename Token>
concept SecondValueRmw = requires(RF& rf, Token t) {
  rf.with_value_slot(std::move(t), VirtualSid{0}, [](SlotValue&) {});
};
template <typename RF, typename Token>
concept CanSkipSid = requires(RF& rf, Token t) {
  rf.template skip<Reg::Sid>(std::move(t));
};
template <typename RF, typename Token>
concept CanRetire = requires(Token t) { retire(std::move(t)); };

// First access is viable...
static_assert(SecondSidRmw<RegisterFile, Sid0>);
static_assert(SecondLastSeenRmw<RegisterFile, Sid0>);
static_assert(SecondValueRmw<RegisterFile, Sid0>);
// ...a second RMW of the same register in the same pass is not.
static_assert(!SecondSidRmw<RegisterFile, AfterSid>);
static_assert(!SecondLastSeenRmw<RegisterFile, AfterSidLs>);
static_assert(!SecondValueRmw<RegisterFile, Full>);
// Neither is skip()ing a register the pass already touched...
static_assert(!CanSkipSid<RegisterFile, AfterSid>);
// ...nor retiring a pass that has not accounted for every register.
static_assert(CanRetire<RegisterFile, Full>);
static_assert(!CanRetire<RegisterFile, Sid0>);
static_assert(!CanRetire<RegisterFile, AfterSid>);
static_assert(!CanRetire<RegisterFile, AfterSidLs>);

// --- Declared pattern vs the Tofino model ----------------------------------

static_assert(pass_access_pattern(false).stateful_register_accesses() == 2);
static_assert(pass_access_pattern(true).stateful_register_accesses() == 3);
static_assert(res::stateful_rmws_per_packet(res::Variant::PacketCount) == 6);
static_assert(res::stateful_rmws_per_packet(res::Variant::ChannelState) == 8);

// --- Runtime semantics of the gated accessors ------------------------------

TEST(RegisterFile, TokenChainThreadsOnePassPerRegister) {
  RegisterFile rf(/*num_channels=*/2, /*slots=*/4);
  StageToken<0> pass;
  auto t1 = rf.with_last_seen(pass, 1, [](VirtualSid& ls) { ls = 7; });
  auto t2 = rf.with_sid(std::move(t1), [](VirtualSid& sid) { sid = 9; });
  auto t3 = rf.with_value_slot(std::move(t2), 9, [](SlotValue& s) {
    s.local_value = 42;
    s.initialized = true;
  });
  retire(std::move(t3));

  EXPECT_EQ(rf.last_seen(1), 7u);
  EXPECT_EQ(rf.last_seen(0), 0u);
  EXPECT_EQ(rf.sid(), 9u);
  EXPECT_EQ(rf.slot(9).local_value, 42u);  // 9 % 4 == slot 1
  EXPECT_EQ(rf.slot(1).local_value, 42u);
  EXPECT_TRUE(rf.slot(1).initialized);
}

TEST(RegisterFile, SkipsRetireWithoutTouchingState) {
  RegisterFile rf(1, 2);
  StageToken<0> pass;
  auto t = rf.with_sid(pass, [](VirtualSid& sid) { ++sid; });
  retire(rf.skip<Reg::Value>(rf.skip<Reg::LastSeen>(std::move(t))));
  EXPECT_EQ(rf.sid(), 1u);
  EXPECT_EQ(rf.last_seen(0), 0u);
  EXPECT_FALSE(rf.slot(0).initialized);
}

TEST(RegisterFile, OracleAccessorSeesWholeArray) {
  RegisterFile rf(1, 3);
  StageToken<0> pass;
  auto t = rf.with_value_array_oracle(pass, [](std::vector<SlotValue>& slots) {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      slots[i].local_value = i + 1;
    }
  });
  retire(rf.skip<Reg::Sid>(rf.skip<Reg::LastSeen>(std::move(t))));
  EXPECT_EQ(rf.slot(0).local_value, 1u);
  EXPECT_EQ(rf.slot(2).local_value, 3u);
}

}  // namespace
}  // namespace speedlight::snap
