// In-band telemetry substrate and fault injection (link flapping).
#include <gtest/gtest.h>

#include <memory>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "net/faults.hpp"
#include "net/topology.hpp"
#include "polling/int_telemetry.hpp"
#include "workload/basic.hpp"

namespace speedlight {
namespace {

using core::Network;
using core::NetworkOptions;

TEST(IntTelemetry, RecordsEveryHopInOrder) {
  NetworkOptions opt;
  opt.int_enabled = true;
  Network net(net::make_line(3), opt);
  net.host(0).set_int_marking(true);

  std::vector<net::IntHop> last_stack;
  net.host(1).set_receive_callback(
      [&](const net::Packet& pkt, sim::SimTime) { last_stack = pkt.int_stack; });
  net.host(0).send(net.host_id(1), 1, 1000);
  net.run_for(sim::msec(1));

  // h0 -> s0 -> s1 -> s2 -> h1: three hops, in path order.
  ASSERT_EQ(last_stack.size(), 3u);
  EXPECT_EQ(last_stack[0].switch_id, 0u);
  EXPECT_EQ(last_stack[1].switch_id, 1u);
  EXPECT_EQ(last_stack[2].switch_id, 2u);
  EXPECT_LT(last_stack[0].egress_time, last_stack[2].egress_time);
}

TEST(IntTelemetry, UnmarkedPacketsUntouched) {
  NetworkOptions opt;
  opt.int_enabled = true;
  Network net(net::make_line(2), opt);
  std::size_t stack_size = 99;
  net.host(1).set_receive_callback([&](const net::Packet& pkt, sim::SimTime) {
    stack_size = pkt.int_stack.size();
  });
  net.host(0).send(net.host_id(1), 1, 1000);  // No marking.
  net.run_for(sim::msec(1));
  EXPECT_EQ(stack_size, 0u);
}

TEST(IntTelemetry, DisabledSwitchesAppendNothing) {
  NetworkOptions opt;  // int_enabled defaults to false.
  Network net(net::make_line(2), opt);
  net.host(0).set_int_marking(true);
  std::size_t stack_size = 99;
  net.host(1).set_receive_callback([&](const net::Packet& pkt, sim::SimTime) {
    stack_size = pkt.int_stack.size();
  });
  net.host(0).send(net.host_id(1), 1, 1000);
  net.run_for(sim::msec(1));
  EXPECT_EQ(stack_size, 0u);
}

TEST(IntTelemetry, CollectorSeparatesEcmpPaths) {
  NetworkOptions opt;
  opt.int_enabled = true;
  Network net(net::make_leaf_spine(2, 2, 3), opt);
  net.host(0).set_int_marking(true);
  poll::IntCollector collector;
  collector.attach_to(net.host(5));
  // Many flows -> ECMP spreads them over both spines.
  for (net::FlowId f = 0; f < 64; ++f) {
    net.host(0).send(net.host_id(5), f, 1000);
  }
  net.run_for(sim::msec(2));
  EXPECT_EQ(collector.telemetry_packets(), 64u);
  // Two distinct 3-hop paths: leaf0 -> spine{0,1} -> leaf1.
  EXPECT_EQ(collector.paths().size(), 2u);
  for (const auto& [path, stats] : collector.paths()) {
    ASSERT_EQ(path.size(), 3u);
    EXPECT_EQ(path[0], 0u);
    EXPECT_EQ(path[2], 1u);
    EXPECT_GT(stats.samples, 10u);
    EXPECT_GE(stats.fabric_transit_ns.mean(), 0.0);
  }
  EXPECT_NE(collector.switch_depth(2), nullptr);
}

TEST(IntTelemetry, SeesQueueBuildupOnPath) {
  NetworkOptions opt;
  opt.int_enabled = true;
  Network net(net::make_star(3), opt);
  net.host(0).set_int_marking(true);
  poll::IntCollector collector;
  collector.attach_to(net.host(2));
  // Two senders converge on host 2: queue builds at its egress port.
  for (int i = 0; i < 400; ++i) {
    net.simulator().at(i * sim::nsec(490), [&net]() {
      net.host(0).send(net.host_id(2), 1, 1500);
      net.host(1).send(net.host_id(2), 2, 1500);
    });
  }
  net.run_for(sim::msec(5));
  bool saw_depth = false;
  for (const auto& [path, stats] : collector.paths()) {
    saw_depth |= stats.max_queue_depth.max() > 2;
  }
  EXPECT_TRUE(saw_depth);
}

TEST(LinkFlapper, AlternatesAndCountsFlaps) {
  sim::Simulator sim;
  net::Host sink(sim, 1, "sink");
  net::Link link(sim, 1e9, 0, sim::Rng(1));
  link.connect(&sink, 0);
  net::LinkFlapper flapper(sim, link, sim::msec(1), sim::msec(1), sim::Rng(2));
  flapper.start(sim::msec(5));
  sim.run_until(sim::msec(50));
  EXPECT_GT(flapper.flaps(), 5u);
  flapper.stop();
}

TEST(LinkFlapper, GoUpRestoresConfiguredLossRate) {
  // Regression: go_up() used to hardcode loss back to 0.0, silently
  // "repairing" links that are legitimately lossy when up.
  sim::Simulator sim;
  net::Host sink(sim, 1, "sink");
  net::Link link(sim, 1e9, 0, sim::Rng(1));
  link.connect(&sink, 0);
  link.set_loss_probability(0.25);
  net::LinkFlapper flapper(sim, link, sim::msec(1), sim::msec(1), sim::Rng(2));
  flapper.start(0);
  sim.run_until(sim::msec(60));
  ASSERT_GT(flapper.flaps(), 0u);
  flapper.stop();
  sim.run_until(sim::msec(120));  // Drain any pending go_up.
  EXPECT_FALSE(flapper.is_down());
  EXPECT_DOUBLE_EQ(link.loss_probability(), 0.25);
}

TEST(LinkFlapper, StopWhileDownStillRestoresLink) {
  // stop() while the link is down must not strand it at 100% loss: the
  // already-scheduled go_up still restores the configured rate, and the
  // flapper schedules nothing further afterwards.
  sim::Simulator sim;
  net::Host sink(sim, 1, "sink");
  net::Link link(sim, 1e9, 0, sim::Rng(1));
  link.connect(&sink, 0);
  link.set_loss_probability(0.1);
  net::LinkFlapper flapper(sim, link, sim::msec(2), sim::msec(2), sim::Rng(7));
  flapper.start(0);
  sim.run_until(sim::usec(1));  // go_down fires at start time.
  ASSERT_TRUE(flapper.is_down());
  ASSERT_DOUBLE_EQ(link.loss_probability(), 1.0);
  flapper.stop();
  sim.run_until(sim::msec(200));  // The pending go_up has long since fired.
  EXPECT_FALSE(flapper.is_down());
  EXPECT_DOUBLE_EQ(link.loss_probability(), 0.1);
  EXPECT_EQ(flapper.flaps(), 1u);
  // Nothing of the flapper's remains scheduled: total event activity is
  // frozen (this simulation contains nothing but the flapper).
  const std::uint64_t scheduled = sim.stats().scheduled;
  sim.run_until(sim::msec(400));
  EXPECT_EQ(sim.stats().scheduled, scheduled);
}

TEST(LinkFlapper, SnapshotsSurviveFlappingTrunk) {
  // Flap one spine trunk while taking channel-state snapshots: liveness
  // machinery (re-initiation + probes) must keep completing them, without
  // excluding any device.
  NetworkOptions opt;
  opt.seed = 61;
  opt.snapshot.channel_state = true;
  opt.observer.completion_timeout = sim::msec(150);
  Network net(net::make_leaf_spine(2, 2, 2), opt);

  // Flap the leaf0->spine0 trunk: markers and probes on it get lost in
  // bursts, forcing the liveness machinery to recover via retries.
  net::LinkFlapper flapper(net.simulator(), net.trunk_link(0, true),
                           /*up=*/sim::msec(4), /*down=*/sim::msec(2),
                           sim::Rng(99));
  flapper.start(net.now() + sim::msec(1));

  auto gens = std::vector<std::unique_ptr<wl::Generator>>{};
  for (std::size_t h = 0; h < net.num_hosts(); ++h) {
    auto g = std::make_unique<wl::PoissonGenerator>(
        net.simulator(), net.host(h),
        std::vector<net::NodeId>{net.host_id((h + 2) % 4)}, 40000, 1000,
        sim::Rng(61 + h));
    g->start(net.now());
    gens.push_back(std::move(g));
  }
  const auto campaign = core::run_snapshot_campaign(net, 6, sim::msec(20));
  const auto results = campaign.results(net);
  EXPECT_EQ(results.size(), 6u);
  for (const auto* snap : results) {
    EXPECT_TRUE(snap->excluded_devices.empty());
  }
  EXPECT_GT(flapper.flaps(), 3u);
}

}  // namespace
}  // namespace speedlight
