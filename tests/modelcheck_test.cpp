// Interleaving-explorer tests (sim/modelcheck.hpp, DESIGN.md section 15):
// the explorer must hold every protocol invariant across scenarios,
// policies, and seeds on the real engine; rediscover both PR 6 protocol
// bugs when they are re-injected; and produce byte-identical schedule
// traces for identical (scenario, policy, seed) — including against a
// committed golden trace, so a platform- or refactor-induced divergence
// in the virtual scheduler shows up as a test failure, not silently
// shrunken coverage.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "modelcheck/scenarios.hpp"
#include "sim/modelcheck.hpp"

namespace speedlight {
namespace {

namespace smc = sim::mc;
namespace fx = tools::mc;

constexpr std::size_t kShards = 3;
constexpr std::size_t kCapacity = 2;

smc::Result explore(const std::string& scenario, smc::Policy policy,
                    std::uint64_t seed, const sim::ProtocolFaults& faults = {},
                    std::uint64_t reference = 0, bool have_reference = false) {
  auto fabric = fx::make_fabric(scenario, kShards,
                                sim::ParallelEngine::Mode::Threads, kCapacity);
  fabric->engine->inject_protocol_faults(faults);
  smc::Options opts;
  opts.until = fabric->until;
  opts.policy = policy;
  opts.seed = seed;
  opts.reference_executed = reference;
  opts.have_reference = have_reference;
  smc::VirtualRun run(*fabric->engine, opts);
  return run.run();
}

TEST(ModelCheck, CleanProtocolHoldsAllInvariants) {
  for (const std::string& scenario : fx::scenario_names()) {
    const std::uint64_t reference =
        fx::inline_reference(scenario, kShards, kCapacity);
    ASSERT_GT(reference, 0u) << scenario << ": workload never ran";
    for (const smc::Policy policy :
         {smc::Policy::RoundRobin, smc::Policy::RandomWalk,
          smc::Policy::PreemptBounded}) {
      for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        const smc::Result res =
            explore(scenario, policy, seed, {}, reference, true);
        EXPECT_EQ(res.verdict, smc::Verdict::Ok)
            << scenario << "/" << smc::policy_name(policy) << "/seed " << seed
            << ": " << res.detail << "\n  trace: " << res.trace;
        EXPECT_EQ(res.executed, reference)
            << scenario << "/" << smc::policy_name(policy) << "/seed " << seed;
      }
    }
  }
}

// PR 6 bug #1: consumers resetting a drained channel's floor to "no bound"
// instead of the producer's residual spill floor. The explorer must see
// the unsound floor (I1) on the burst fabric — the ring overflows, so the
// spill backlog the reset ignores is always populated.
TEST(ModelCheck, RediscoversFloorResetBug) {
  sim::ProtocolFaults faults;
  faults.floor_reset = true;
  const smc::Result res =
      explore("burst", smc::Policy::RoundRobin, 1, faults);
  EXPECT_TRUE(res.verdict == smc::Verdict::FloorUnsound ||
              res.verdict == smc::Verdict::LostEvent)
      << "verdict: " << smc::verdict_name(res.verdict);
  EXPECT_FALSE(res.trace.empty());
  EXPECT_FALSE(res.detail.empty());
  // The violating schedule is short — the trace is a usable reproducer,
  // not a haystack.
  EXPECT_LE(res.steps, 50u) << res.trace;
}

// PR 6 bug #2: flush_spill moving messages without bumping the epoch. The
// consumer parks below the folded floor; with no wakeup ever coming the
// fabric deadlocks (I4).
TEST(ModelCheck, RediscoversSilentFlushBug) {
  sim::ProtocolFaults faults;
  faults.silent_flush = true;
  const smc::Result res =
      explore("burst", smc::Policy::RoundRobin, 1, faults);
  EXPECT_EQ(res.verdict, smc::Verdict::Deadlock)
      << "verdict: " << smc::verdict_name(res.verdict)
      << " detail: " << res.detail;
  EXPECT_FALSE(res.trace.empty());
  EXPECT_LE(res.steps, 50u) << res.trace;
}

// Every injected bug must be found across the whole seed range, not just
// a lucky schedule — the round-robin canonical order alone triggers both,
// and the randomized policies must not mask them.
TEST(ModelCheck, InjectedBugsFoundUnderEveryPolicy) {
  for (const bool floor_reset : {true, false}) {
    sim::ProtocolFaults faults;
    faults.floor_reset = floor_reset;
    faults.silent_flush = !floor_reset;
    for (const smc::Policy policy :
         {smc::Policy::RoundRobin, smc::Policy::RandomWalk,
          smc::Policy::PreemptBounded}) {
      bool found = false;
      for (std::uint64_t seed = 1; seed <= 20 && !found; ++seed) {
        found = explore("burst", policy, seed, faults).verdict !=
                smc::Verdict::Ok;
      }
      EXPECT_TRUE(found) << (floor_reset ? "floor-reset" : "silent-flush")
                         << " escaped " << smc::policy_name(policy);
    }
  }
}

TEST(ModelCheck, TracesAreSeedDeterministic) {
  for (const smc::Policy policy :
       {smc::Policy::RandomWalk, smc::Policy::PreemptBounded}) {
    const smc::Result a = explore("ring", policy, 42);
    const smc::Result b = explore("ring", policy, 42);
    EXPECT_EQ(a.trace, b.trace) << smc::policy_name(policy);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.executed, b.executed);
  }
  // Different seeds must actually diversify the walk (coverage, not
  // twenty copies of one schedule).
  const smc::Result s1 = explore("ring", smc::Policy::RandomWalk, 1);
  const smc::Result s2 = explore("ring", smc::Policy::RandomWalk, 2);
  EXPECT_NE(s1.trace, s2.trace);
}

// The canonical round-robin schedule of the pingpong fabric, pinned as a
// committed golden file (regenerate with:
//   speedlight_modelcheck --scenario pingpong --policy rr --seed 1
//                         --schedules 1 --trace-out <file>).
// A diff here means the virtual scheduler, the plan_shard protocol, or
// the scenario changed — all of which invalidate recorded repro traces
// and must be a conscious decision.
TEST(ModelCheck, GoldenPingpongTraceMatches) {
  const std::string path =
      std::string(SPEEDLIGHT_GOLDEN_DIR) + "/modelcheck_pingpong_rr_seed1.trace";
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path;
  std::string header;
  std::string golden;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, golden));
  EXPECT_EQ(header.rfind("# speedlight_modelcheck", 0), 0u) << header;

  const smc::Result res = explore("pingpong", smc::Policy::RoundRobin, 1);
  EXPECT_EQ(res.verdict, smc::Verdict::Ok) << res.detail;
  EXPECT_EQ(res.trace, golden)
      << "canonical schedule diverged from the committed golden trace";
}

// Exploration runs on consumed engines; the Inline twin used for the
// reference count must agree with a straight Threads run of the same
// fabric (the engine's own digest-parity guarantee, exercised through
// the scenario factories).
TEST(ModelCheck, InlineAndThreadsAgreeOnScenarios) {
  for (const std::string& scenario : fx::scenario_names()) {
    const std::uint64_t reference =
        fx::inline_reference(scenario, kShards, kCapacity);
    auto fabric = fx::make_fabric(
        scenario, kShards, sim::ParallelEngine::Mode::Threads, kCapacity);
    EXPECT_EQ(fabric->engine->run_until(fabric->until), reference) << scenario;
  }
}

}  // namespace
}  // namespace speedlight
