// The packet-sampling baseline: rate correctness, estimate accuracy, and
// its fundamental inconsistency compared with snapshots.
#include <gtest/gtest.h>

#include <cmath>

#include "core/network.hpp"
#include "net/topology.hpp"
#include "polling/sampling.hpp"
#include "workload/basic.hpp"

namespace speedlight {
namespace {

using core::Network;
using core::NetworkOptions;

TEST(Sampling, EstimatesScaleWithRate) {
  Network net(net::make_star(2), NetworkOptions{});
  poll::SamplingCollector collector(net.simulator(), /*rate=*/10);
  auto sink = collector.sink();
  net.switch_at(0).enable_sampling(
      10, [&sink, &net](net::NodeId sw, net::PortId port, const net::Packet& p) {
        sink({sw, port, p.size_bytes, net.simulator().now()});
      });

  constexpr int kPackets = 20000;
  for (int i = 0; i < kPackets; ++i) {
    net.simulator().at(i * sim::usec(1),
                       [&net]() { net.host(0).send(net.host_id(1), 1, 1000); });
  }
  net.run_for(sim::msec(50));

  const auto est = collector.estimated_packets(0, 0);
  EXPECT_NEAR(static_cast<double>(est), kPackets,
              4.0 * 10.0 * std::sqrt(kPackets / 10.0));  // ~4 sigma
  EXPECT_NEAR(static_cast<double>(collector.samples(0, 0)), kPackets / 10.0,
              4.0 * std::sqrt(kPackets / 10.0));
  EXPECT_EQ(collector.estimated_bytes(0, 0), collector.samples(0, 0) * 10000u);
}

TEST(Sampling, DisabledByDefault) {
  Network net(net::make_star(2), NetworkOptions{});
  poll::SamplingCollector collector(net.simulator(), 10);
  for (int i = 0; i < 100; ++i) net.host(0).send(net.host_id(1), 1, 100);
  net.run_for(sim::msec(5));
  EXPECT_EQ(collector.total_samples(), 0u);
}

TEST(Sampling, ControlTrafficNeverSampled) {
  NetworkOptions opt;
  opt.snapshot.channel_state = true;  // Produces probes + initiations.
  Network net(net::make_line(2), opt);
  poll::SamplingCollector collector(net.simulator(), /*rate=*/1);
  auto sink = collector.sink();
  for (std::size_t s = 0; s < net.num_switches(); ++s) {
    net.switch_at(s).enable_sampling(
        1,
        [&sink, &net](net::NodeId sw, net::PortId port, const net::Packet& p) {
          sink({sw, port, p.size_bytes, net.simulator().now()});
        });
  }
  net.take_snapshot();  // Initiations + probe floods, zero app traffic.
  EXPECT_EQ(collector.total_samples(), 0u);
}

TEST(Sampling, SampledEstimateHasErrorSnapshotDoesNot) {
  // The contrast the paper draws: a snapshot value is exact and consistent;
  // a sampled estimate carries noise even for the same quantity.
  Network net(net::make_star(2), NetworkOptions{});
  poll::SamplingCollector collector(net.simulator(), /*rate=*/50);
  auto sink = collector.sink();
  net.switch_at(0).enable_sampling(
      50, [&sink, &net](net::NodeId sw, net::PortId port, const net::Packet& p) {
        sink({sw, port, p.size_bytes, net.simulator().now()});
      });
  for (int i = 0; i < 5000; ++i) {
    net.simulator().at(i * sim::usec(2),
                       [&net]() { net.host(0).send(net.host_id(1), 1, 800); });
  }
  net.run_for(sim::msec(20));
  const auto* snap = net.take_snapshot();
  ASSERT_NE(snap, nullptr);
  const auto it = snap->reports.find({0, 0, net::Direction::Ingress});
  ASSERT_NE(it, snap->reports.end());
  EXPECT_EQ(it->second.local_value, 5000u);  // Exact.
  const auto est = collector.estimated_packets(0, 0);
  EXPECT_NE(est, 5000u);  // With overwhelming probability.
  EXPECT_NEAR(static_cast<double>(est), 5000.0, 2000.0);  // But in the zone.
}

}  // namespace
}  // namespace speedlight
