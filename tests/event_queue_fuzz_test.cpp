// Randomized differential test: the slab/4-ary-heap EventQueue against a
// naive sorted-vector reference model, under ~100k mixed
// schedule/cancel/pop operations per seed. Verifies identical pop order,
// timestamps, and payloads, identical cancel outcomes, and the
// heap-boundedness guarantee (heap entries <= 2x live events after every
// cancellation).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace speedlight::sim {
namespace {

/// The obviously correct model: a flat list of pending events, popped by
/// linear min-scan on (time, schedule order).
class ReferenceQueue {
 public:
  std::uint64_t schedule(SimTime when, int payload) {
    entries_.push_back(Entry{when, next_seq_++, next_id_, payload, true});
    return next_id_++;
  }

  bool cancel(std::uint64_t id) {
    for (auto& e : entries_) {
      if (e.id == id && e.alive) {
        e.alive = false;
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& e : entries_) n += e.alive ? 1 : 0;
    return n;
  }

  struct Popped {
    SimTime time;
    int payload;
  };
  Popped pop() {
    std::size_t best = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const auto& e = entries_[i];
      if (!e.alive) continue;
      if (best == entries_.size() ||
          e.time < entries_[best].time ||
          (e.time == entries_[best].time && e.seq < entries_[best].seq)) {
        best = i;
      }
    }
    Popped out{entries_[best].time, entries_[best].payload};
    entries_[best].alive = false;
    maybe_compact();
    return out;
  }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint64_t id;
    int payload;
    bool alive;
  };

  void maybe_compact() {
    if (entries_.size() < 1024 || size() * 2 > entries_.size()) return;
    std::vector<Entry> live;
    live.reserve(entries_.size() / 2);
    for (auto& e : entries_) {
      if (e.alive) live.push_back(e);
    }
    entries_ = std::move(live);
  }

  std::vector<Entry> entries_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
};

void run_differential(std::uint64_t seed, int ops) {
  Rng rng(seed);
  EventQueue q;
  ReferenceQueue ref;

  // Parallel handle lists: same index -> same logical event in both queues.
  std::vector<EventId> q_ids;
  std::vector<std::uint64_t> ref_ids;

  SimTime now = 0;
  int last_payload = -1;
  int next_payload = 0;

  for (int i = 0; i < ops; ++i) {
    const auto r = rng.uniform_int(0, 99);
    if (r < 40) {
      const SimTime when = now + static_cast<SimTime>(rng.uniform_int(0, 997));
      const int payload = next_payload++;
      q_ids.push_back(
          q.schedule(when, [payload, &last_payload] { last_payload = payload; }));
      ref_ids.push_back(ref.schedule(when, payload));
    } else if (r < 60) {
      if (q_ids.empty()) continue;
      // Target any event ever scheduled: pending (cancel succeeds), already
      // popped or already cancelled (cancel is a no-op). Both queues must
      // agree on which.
      const auto pick = rng.uniform_int(0, q_ids.size() - 1);
      const bool ref_hit = ref.cancel(ref_ids[pick]);
      ASSERT_EQ(q.cancel(q_ids[pick]), ref_hit) << "seed " << seed << " op " << i;
      // The boundedness guarantee is enforced at cancellation time: stale
      // entries never exceed half the heap (satellite of the stale-leak fix).
      ASSERT_LE(q.heap_entries(), 2 * q.size()) << "seed " << seed << " op " << i;
    } else {
      if (q.empty()) {
        ASSERT_EQ(ref.size(), 0u) << "seed " << seed << " op " << i;
        continue;
      }
      ASSERT_EQ(q.next_time(), [&ref] {
        ReferenceQueue probe = ref;  // copy: peek via pop on the copy
        return probe.pop().time;
      }()) << "seed " << seed << " op " << i;
      auto popped = q.pop();
      const auto expect = ref.pop();
      ASSERT_EQ(popped.time, expect.time) << "seed " << seed << " op " << i;
      popped.fn();
      ASSERT_EQ(last_payload, expect.payload) << "seed " << seed << " op " << i;
      ASSERT_GE(popped.time, now) << "seed " << seed << " op " << i;
      now = popped.time;
    }
    ASSERT_EQ(q.size(), ref.size()) << "seed " << seed << " op " << i;
    ASSERT_EQ(q.empty(), ref.size() == 0) << "seed " << seed << " op " << i;
  }

  // Drain both completely; order must match to the last event.
  while (!q.empty()) {
    auto popped = q.pop();
    const auto expect = ref.pop();
    ASSERT_EQ(popped.time, expect.time);
    popped.fn();
    ASSERT_EQ(last_payload, expect.payload);
  }
  ASSERT_EQ(ref.size(), 0u);
}

TEST(EventQueueFuzz, DifferentialSeed1) { run_differential(1, 100'000); }
TEST(EventQueueFuzz, DifferentialSeed42) { run_differential(42, 100'000); }
TEST(EventQueueFuzz, DifferentialSeed2026) { run_differential(2026, 100'000); }

// Heavy cancellation mix: most scheduled events get cancelled, stressing
// slot recycling, generation bumps, and compaction.
TEST(EventQueueFuzz, CancelHeavySeed7) {
  Rng rng(7);
  EventQueue q;
  std::vector<EventId> ids;
  int fired = 0;
  SimTime now = 0;
  for (int i = 0; i < 50'000; ++i) {
    const auto r = rng.uniform_int(0, 99);
    if (r < 45) {
      ids.push_back(q.schedule(now + static_cast<SimTime>(rng.uniform_int(1, 50)),
                               [&fired] { ++fired; }));
    } else if (r < 90) {
      if (!ids.empty()) {
        q.cancel(ids[rng.uniform_int(0, ids.size() - 1)]);
        ASSERT_LE(q.heap_entries(), 2 * q.size());
      }
    } else if (!q.empty()) {
      auto popped = q.pop();
      popped.fn();
      now = popped.time;
    }
  }
  const std::size_t live = q.size();
  while (!q.empty()) q.pop().fn();
  EXPECT_GE(fired, 1);
  EXPECT_LE(q.slab_slots(), 50'000u);
  EXPECT_GT(q.compactions(), 0u);
  EXPECT_EQ(q.heap_entries(), 0u);
  (void)live;
}

}  // namespace
}  // namespace speedlight::sim
