// The data plane -> CPU notification channel: latency, serialization,
// overflow, and loss.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "sim/timing_model.hpp"
#include "snapshot/digest_channel.hpp"
#include "snapshot/notification_channel.hpp"

namespace speedlight::snap {
namespace {

Notification make_notification(WireSid sid) {
  Notification n;
  n.unit = net::UnitId{0, 0, net::Direction::Ingress};
  n.new_sid = sid;
  return n;
}

struct Fixture {
  explicit Fixture(sim::TimingModel tm = {})
      : timing(tm),
        channel(sim, timing, sim::Rng(1),
                [this](const Notification& n) {
                  delivered.push_back({n.new_sid, sim.now()});
                }) {}

  sim::Simulator sim;
  sim::TimingModel timing;
  std::vector<std::pair<WireSid, sim::SimTime>> delivered;
  NotificationChannel channel;
};

TEST(NotificationChannel, DeliversAfterPcieAndService) {
  Fixture f;
  f.channel.push(make_notification(1));
  f.sim.run_until(sim::sec(1));
  ASSERT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.delivered[0].second, f.timing.notification_pcie_latency +
                                       f.timing.notification_service_time);
}

TEST(NotificationChannel, ServiceIsSerialized) {
  Fixture f;
  for (WireSid i = 0; i < 5; ++i) f.channel.push(make_notification(i));
  f.sim.run_until(sim::sec(1));
  ASSERT_EQ(f.delivered.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(f.delivered[i].first, i);  // FIFO.
    const sim::SimTime expected =
        f.timing.notification_pcie_latency +
        static_cast<sim::SimTime>(i + 1) * f.timing.notification_service_time;
    EXPECT_EQ(f.delivered[i].second, expected);
  }
  EXPECT_EQ(f.channel.max_backlog(), 5u);
  EXPECT_EQ(f.channel.backlog(), 0u);
}

TEST(NotificationChannel, OverflowDrops) {
  sim::TimingModel tm;
  tm.notification_buffer_capacity = 3;
  Fixture f(tm);
  for (WireSid i = 0; i < 10; ++i) f.channel.push(make_notification(i));
  f.sim.run_until(sim::sec(1));
  // One may begin service before later arrivals; at least the clear
  // overflow amount is dropped.
  EXPECT_GE(f.channel.dropped_overflow(), 6u);
  EXPECT_EQ(f.delivered.size() + f.channel.dropped_overflow(), 10u);
}

TEST(NotificationChannel, RandomLoss) {
  sim::TimingModel tm;
  tm.notification_drop_probability = 0.5;
  Fixture f(tm);
  for (WireSid i = 0; i < 1000; ++i) f.channel.push(make_notification(i));
  f.sim.run_until(sim::sec(10));
  EXPECT_NEAR(static_cast<double>(f.channel.dropped_random()), 500.0, 60.0);
  EXPECT_EQ(f.delivered.size() + f.channel.dropped_random(), 1000u);
}

TEST(NotificationChannel, ResetStats) {
  Fixture f;
  f.channel.push(make_notification(1));
  f.sim.run_until(sim::sec(1));
  EXPECT_EQ(f.channel.delivered(), 1u);
  f.channel.reset_stats();
  EXPECT_EQ(f.channel.delivered(), 0u);
  EXPECT_EQ(f.channel.max_backlog(), 0u);
}

TEST(NotificationChannel, SustainedOverloadBacklogGrows) {
  // Arrivals every 10us vs 110us service: the backlog must build.
  Fixture f;
  for (int i = 0; i < 200; ++i) {
    f.sim.at(i * sim::usec(10), [&f, i]() {
      f.channel.push(make_notification(static_cast<WireSid>(i)));
    });
  }
  f.sim.run_until(sim::msec(2));  // Mid-burst.
  EXPECT_GT(f.channel.backlog(), 50u);
}

// --- Digest-stream alternative ------------------------------------------------

struct DigestFixture {
  explicit DigestFixture(sim::TimingModel tm = {})
      : timing(tm),
        channel(sim, timing, sim::Rng(1),
                [this](const Notification& n) {
                  delivered.push_back({n.new_sid, sim.now()});
                }) {}

  sim::Simulator sim;
  sim::TimingModel timing;
  std::vector<std::pair<WireSid, sim::SimTime>> delivered;
  DigestChannel channel;
};

TEST(DigestChannel, FlushesOnTimeoutForPartialBatch) {
  DigestFixture f;
  f.channel.push(make_notification(1));
  f.sim.run_until(sim::sec(1));
  ASSERT_EQ(f.delivered.size(), 1u);
  // Timeout + PCIe + one-digest service with one entry.
  const sim::SimTime expected =
      f.timing.digest_flush_timeout + f.timing.notification_pcie_latency +
      f.timing.digest_batch_overhead + f.timing.digest_per_entry_cost;
  EXPECT_EQ(f.delivered[0].second, expected);
  EXPECT_EQ(f.channel.digests_flushed(), 1u);
}

TEST(DigestChannel, FlushesImmediatelyWhenFull) {
  DigestFixture f;
  for (std::size_t i = 0; i < f.timing.digest_batch_size; ++i) {
    f.channel.push(make_notification(static_cast<WireSid>(i)));
  }
  f.sim.run_until(sim::sec(1));
  EXPECT_EQ(f.delivered.size(), f.timing.digest_batch_size);
  EXPECT_EQ(f.channel.digests_flushed(), 1u);
  // Delivered well before the flush timeout would have fired plus service.
  EXPECT_LT(f.delivered[0].second,
            f.timing.digest_flush_timeout + sim::msec(10));
}

TEST(DigestChannel, PreservesOrderAcrossDigests) {
  DigestFixture f;
  for (WireSid i = 0; i < 100; ++i) f.channel.push(make_notification(i));
  f.sim.run_until(sim::sec(10));
  ASSERT_EQ(f.delivered.size(), 100u);
  for (WireSid i = 0; i < 100; ++i) EXPECT_EQ(f.delivered[i].first, i);
}

TEST(DigestChannel, OverflowDropsWholeDigests) {
  sim::TimingModel tm;
  tm.digest_queue_capacity = 1;
  tm.digest_batch_size = 4;
  DigestFixture f(tm);
  for (WireSid i = 0; i < 64; ++i) f.channel.push(make_notification(i));
  f.sim.run_until(sim::sec(10));
  EXPECT_GT(f.channel.dropped_overflow(), 0u);
  EXPECT_EQ(f.delivered.size() + f.channel.dropped_overflow(), 64u);
}

TEST(DigestChannel, HigherLatencyThanRawSocket) {
  // The reason the paper picked raw sockets: a single notification takes
  // much longer through the digest path.
  DigestFixture digest;
  Fixture raw;
  digest.channel.push(make_notification(1));
  raw.channel.push(make_notification(1));
  digest.sim.run_until(sim::sec(1));
  raw.sim.run_until(sim::sec(1));
  ASSERT_EQ(digest.delivered.size(), 1u);
  ASSERT_EQ(raw.delivered.size(), 1u);
  EXPECT_GT(digest.delivered[0].second, raw.delivered[0].second * 3);
}

}  // namespace
}  // namespace speedlight::snap
