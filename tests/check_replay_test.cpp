// Corpus replay: every committed .scenario file in tests/corpus/ must load
// and run with zero invariant violations. The corpus holds shrunk
// reproducers of fixed bugs and near-miss seeds (wire-sid rollover under
// faults) promoted from fuzz runs; a regression that re-breaks one of them
// fails here with the exact scenario attached.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "check/fuzzer.hpp"

#ifndef SPEEDLIGHT_CORPUS_DIR
#error "SPEEDLIGHT_CORPUS_DIR must point at tests/corpus"
#endif

namespace speedlight {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(SPEEDLIGHT_CORPUS_DIR)) {
    if (entry.path().extension() == ".scenario") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CorpusReplay, CorpusIsNonEmpty) {
  EXPECT_GE(corpus_files().size(), 3u);
}

TEST(CorpusReplay, EveryScenarioReplaysClean) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path);
    const check::Scenario s = check::load_scenario(path);
    const auto r = check::run_scenario(s, {.with_oracle = true});
    EXPECT_TRUE(r.violations.empty())
        << s.label() << ": " << r.violations.front().invariant << ": "
        << r.violations.front().detail;
    EXPECT_GT(r.completed, 0u) << s.label();
  }
}

TEST(CorpusReplay, WireTwinDigestsAgreeOnEveryScenario) {
  // Codec-equivalence pin: every corpus scenario replayed with the wire
  // fast path must reach the same observable end state under delta+compact
  // and full-frame encodings. The compactts_* scenario makes this bite: its
  // fault burst straddles the 2^24 ns truncated-timestamp boundary, so the
  // 24-bit report timestamps only survive if epoch recovery is exact.
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path);
    const check::Scenario s = check::load_scenario(path);
    const auto delta = check::run_scenario(
        s, {.with_oracle = false, .wire = check::WireMode::DeltaCompact});
    const auto full = check::run_scenario(
        s, {.with_oracle = false, .wire = check::WireMode::FullV2});
    EXPECT_TRUE(delta.violations.empty()) << s.label();
    EXPECT_EQ(delta.digest, full.digest) << s.label();
    EXPECT_GT(delta.completed, 0u) << s.label();
  }
}

TEST(CorpusReplay, CompactTsCorpusStraddlesTheEpochBoundary) {
  // At least one pinned scenario must keep a fault window open across the
  // 16,777,216 ns mark, so the twin replay above provably exercises 24-bit
  // timestamp recovery across an epoch rollover.
  constexpr sim::SimTime kEpoch = sim::SimTime{1} << 24;
  bool saw_straddle = false;
  for (const auto& path : corpus_files()) {
    const check::Scenario s = check::load_scenario(path);
    for (const auto& f : s.faults) {
      const sim::SimTime start = s.warmup + f.start;
      saw_straddle |= start < kEpoch && start + f.duration > kEpoch;
    }
  }
  EXPECT_TRUE(saw_straddle);
}

TEST(CorpusReplay, RolloverCorpusActuallyRollsOver) {
  // The corpus exists to pin wire-sid rollover behavior: at least one file
  // must use a small modulus and complete more snapshots than the wire
  // space holds, so ids provably wrap during the run.
  bool saw_rollover = false;
  for (const auto& path : corpus_files()) {
    const check::Scenario s = check::load_scenario(path);
    if (s.modulus == 0 || s.modulus > 16) continue;
    const auto r = check::run_scenario(s, {.with_oracle = false});
    // Virtual ids are issued sequentially from 1, so accepting more
    // requests than the wire space holds guarantees a wrap.
    saw_rollover |= r.requested >= s.modulus;
  }
  EXPECT_TRUE(saw_rollover);
}

}  // namespace
}  // namespace speedlight
