// End-to-end snapshot protocol tests on live simulated networks: causal
// consistency (flow conservation), completion, liveness under loss,
// wraparound, partial deployment, and device exclusion.
#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "net/topology.hpp"
#include "workload/basic.hpp"

namespace speedlight {
namespace {

using core::Network;
using core::NetworkOptions;

NetworkOptions cs_options() {
  NetworkOptions opt;
  opt.snapshot.channel_state = true;
  opt.metric = sw::MetricKind::PacketCount;
  return opt;
}

/// Background cross-traffic between all host pairs.
std::vector<std::unique_ptr<wl::Generator>> start_all_to_all(
    Network& net, double rate_pps = 50000) {
  std::vector<std::unique_ptr<wl::Generator>> gens;
  std::vector<net::NodeId> all;
  for (std::size_t h = 0; h < net.num_hosts(); ++h) all.push_back(net.host_id(h));
  for (std::size_t h = 0; h < net.num_hosts(); ++h) {
    std::vector<net::NodeId> dsts;
    for (const auto id : all) {
      if (id != net.host_id(h)) dsts.push_back(id);
    }
    auto g = std::make_unique<wl::PoissonGenerator>(
        net.simulator(), net.host(h), dsts, rate_pps, 1000,
        sim::Rng(1000 + h));
    g->start(net.now());
    gens.push_back(std::move(g));
  }
  return gens;
}

/// For every trunk direction: egress value == ingress value + ingress
/// channel state (exact flow conservation on lossless links).
void expect_conservation(const Network& net, const snap::GlobalSnapshot& snap) {
  for (const auto& t : net.spec().trunks) {
    const struct {
      net::UnitId egress, ingress;
    } dirs[2] = {
        {{static_cast<net::NodeId>(t.switch_a), t.port_a, net::Direction::Egress},
         {static_cast<net::NodeId>(t.switch_b), t.port_b, net::Direction::Ingress}},
        {{static_cast<net::NodeId>(t.switch_b), t.port_b, net::Direction::Egress},
         {static_cast<net::NodeId>(t.switch_a), t.port_a, net::Direction::Ingress}},
    };
    for (const auto& d : dirs) {
      const auto eg = snap.reports.find(d.egress);
      const auto in = snap.reports.find(d.ingress);
      ASSERT_NE(eg, snap.reports.end());
      ASSERT_NE(in, snap.reports.end());
      if (!eg->second.consistent || !in->second.consistent) continue;
      EXPECT_EQ(eg->second.local_value,
                in->second.local_value + in->second.channel_value)
          << "snapshot " << snap.id << " trunk " << t.switch_a << ":"
          << t.port_a << " -> " << t.switch_b << ":" << t.port_b;
    }
  }
}

TEST(SnapshotIntegration, NoCsSnapshotCompletesQuickly) {
  Network net(net::make_leaf_spine(2, 2, 3), NetworkOptions{});
  auto gens = start_all_to_all(net);
  net.run_for(sim::msec(5));
  const snap::GlobalSnapshot* snap = net.take_snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->complete);
  EXPECT_TRUE(snap->excluded_devices.empty());
  EXPECT_TRUE(snap->all_consistent());
  // 4 switches: (5+5+2+2)*2 = 28 units.
  EXPECT_EQ(snap->reports.size(), 28u);
  // Near-synchronous: all units advanced within < 100us (Section 3).
  EXPECT_LT(snap->advance_span(), sim::usec(100));
  EXPECT_GT(snap->total_value(false), 0u);
}

TEST(SnapshotIntegration, CsSnapshotConservation) {
  Network net(net::make_leaf_spine(2, 2, 3), cs_options());
  auto gens = start_all_to_all(net);
  net.run_for(sim::msec(5));
  const snap::GlobalSnapshot* snap = net.take_snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->complete);
  EXPECT_TRUE(snap->all_consistent());
  expect_conservation(net, *snap);
}

TEST(SnapshotIntegration, CsCompletesWithoutTrafficViaProbes) {
  // No application traffic at all: only probes can complete a channel-state
  // snapshot (the Section 6 liveness mechanism).
  Network net(net::make_leaf_spine(2, 2, 3), cs_options());
  const snap::GlobalSnapshot* snap = net.take_snapshot(sim::msec(1), sim::msec(200));
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->complete);
  EXPECT_TRUE(snap->excluded_devices.empty());
  EXPECT_TRUE(snap->all_consistent());
}

TEST(SnapshotIntegration, CampaignValuesMonotone) {
  Network net(net::make_leaf_spine(2, 2, 3), NetworkOptions{});
  auto gens = start_all_to_all(net);
  net.run_for(sim::msec(2));
  const auto campaign = core::run_snapshot_campaign(net, 10, sim::msec(2));
  const auto results = campaign.results(net);
  ASSERT_EQ(results.size(), 10u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    for (const auto& [unit, report] : results[i]->reports) {
      const auto prev = results[i - 1]->reports.find(unit);
      ASSERT_NE(prev, results[i - 1]->reports.end());
      EXPECT_GE(report.local_value, prev->second.local_value);
    }
  }
}

TEST(SnapshotIntegration, CampaignConservationEverySnapshot) {
  Network net(net::make_leaf_spine(2, 2, 3), cs_options());
  auto gens = start_all_to_all(net, 80000);
  net.run_for(sim::msec(2));
  const auto campaign = core::run_snapshot_campaign(net, 8, sim::msec(3));
  const auto results = campaign.results(net);
  ASSERT_EQ(results.size(), 8u);
  for (const auto* snap : results) {
    EXPECT_TRUE(snap->all_consistent());
    expect_conservation(net, *snap);
  }
}

TEST(SnapshotIntegration, WraparoundLongCampaign) {
  NetworkOptions opt = cs_options();
  opt.snapshot.wire_id_modulus = 8;  // 3-bit wire ids.
  Network net(net::make_line(3), opt);
  auto gens = start_all_to_all(net, 100000);
  net.run_for(sim::msec(2));
  // 30 snapshots roll the 3-bit id space over multiple times.
  const auto campaign = core::run_snapshot_campaign(net, 30, sim::msec(3));
  EXPECT_EQ(campaign.skipped, 0u);
  const auto results = campaign.results(net);
  ASSERT_EQ(results.size(), 30u);
  for (const auto* snap : results) {
    EXPECT_TRUE(snap->all_consistent()) << snap->id;
    expect_conservation(net, *snap);
  }
}

TEST(SnapshotIntegration, NotificationLossRecoveredByRegisterPoll) {
  NetworkOptions opt;  // No channel state: simpler completion.
  opt.timing.notification_drop_probability = 0.3;
  opt.control.proactive_register_poll = true;
  opt.control.register_poll_interval = sim::msec(2);
  opt.start_register_poll = true;
  Network net(net::make_leaf_spine(2, 2, 3), opt);
  auto gens = start_all_to_all(net);
  net.run_for(sim::msec(2));
  const auto campaign = core::run_snapshot_campaign(net, 5, sim::msec(5));
  const auto results = campaign.results(net);
  EXPECT_EQ(results.size(), 5u);
}

TEST(SnapshotIntegration, TrunkLossStillCompletes) {
  // 2% loss on every link: channel-state conservation no longer holds, but
  // snapshots must still complete via re-initiation + probes.
  NetworkOptions opt = cs_options();
  opt.observer.completion_timeout = sim::msec(200);
  Network net(net::make_leaf_spine(2, 2, 3), opt);
  // Inject loss by running traffic over a queue-constrained network
  // (drops at queues) — the worst case for marker delivery.
  net.run_for(sim::msec(1));
  auto gens = start_all_to_all(net, 150000);
  const auto campaign = core::run_snapshot_campaign(net, 3, sim::msec(20));
  const auto results = campaign.results(net);
  EXPECT_EQ(results.size(), 3u);
  for (const auto* snap : results) {
    EXPECT_TRUE(snap->excluded_devices.empty());
  }
}

TEST(SnapshotIntegration, PartialDeploymentNoCs) {
  // Disable one spine: snapshots cover the remaining devices; traffic still
  // crosses the disabled switch with headers intact.
  net::TopologySpec spec = net::make_leaf_spine(2, 2, 3);
  spec.switches[3].snapshot_enabled = false;  // spine1.
  Network net(spec, NetworkOptions{});
  auto gens = start_all_to_all(net);
  net.run_for(sim::msec(5));
  const snap::GlobalSnapshot* snap = net.take_snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->complete);
  // 3 enabled switches: (5+5+2)*2 = 24 units.
  EXPECT_EQ(snap->reports.size(), 24u);
  EXPECT_TRUE(snap->all_consistent());
  // Hosts never see headers even with a disabled transit switch.
  for (std::size_t h = 0; h < net.num_hosts(); ++h) {
    EXPECT_EQ(net.host(h).header_leaks(), 0u) << h;
  }
}

TEST(SnapshotIntegration, PartialDeploymentCsChainConservation) {
  // Chain s0 - s1(disabled) - s2: the logical channel s0<->s2 stays FIFO,
  // so channel-state consistency holds across the disabled transit switch
  // (Section 10).
  net::TopologySpec spec = net::make_line(3);
  spec.switches[1].snapshot_enabled = false;
  NetworkOptions opt = cs_options();
  opt.transit_neighbors_carry_markers = true;
  Network net(spec, opt);
  auto gens = start_all_to_all(net, 100000);
  net.run_for(sim::msec(5));
  const snap::GlobalSnapshot* snap = net.take_snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->complete);
  EXPECT_TRUE(snap->all_consistent());
  // Conservation across the *logical* channel s0.egress(2) -> s2.ingress(1):
  // the disabled middle neither counts nor drops.
  const auto eg = snap->reports.find({0, 2, net::Direction::Egress});
  const auto in = snap->reports.find({2, 1, net::Direction::Ingress});
  ASSERT_NE(eg, snap->reports.end());
  ASSERT_NE(in, snap->reports.end());
  EXPECT_EQ(eg->second.local_value,
            in->second.local_value + in->second.channel_value);
}

TEST(SnapshotIntegration, HungDeviceExcludedAtTimeout) {
  // With probes and re-initiation disabled and zero traffic, channel-state
  // completion stalls forever: the observer must exclude the devices and
  // finish the snapshot without them.
  NetworkOptions opt = cs_options();
  opt.control.auto_reinitiate = false;
  opt.force_probe_liveness = false;
  opt.observer.completion_timeout = sim::msec(30);
  Network net(net::make_line(2), opt);
  const snap::GlobalSnapshot* snap = net.take_snapshot(sim::msec(1), sim::msec(100));
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->complete);
  EXPECT_EQ(snap->excluded_devices.size(), 2u);
  EXPECT_TRUE(snap->reports.empty());
}

TEST(SnapshotIntegration, RolloverWindowRefusesOverrun) {
  NetworkOptions opt;
  opt.snapshot.wire_id_modulus = 8;  // No-CS window: modulus/2 - 1 = 3.
  Network net(net::make_star(2), opt);
  // Request far more snapshots than the window allows, all at once and too
  // far in the future for any to complete first.
  int accepted = 0;
  int refused = 0;
  for (int i = 0; i < 10; ++i) {
    if (net.observer().request_snapshot(net.now() + sim::sec(1))) {
      ++accepted;
    } else {
      ++refused;
    }
  }
  EXPECT_EQ(accepted, 3);
  EXPECT_EQ(refused, 7);
}

TEST(SnapshotIntegration, SpuriousReportsIgnored) {
  // Reports for never-requested ids (e.g. from a freshly attached device
  // jumping ahead, Section 6 "Node attachment") must not crash or corrupt
  // the observer.
  Network net(net::make_star(2), NetworkOptions{});
  auto gens = start_all_to_all(net);
  net.run_for(sim::msec(5));
  const snap::GlobalSnapshot* snap = net.take_snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->complete);
  EXPECT_EQ(net.observer().completed_count(), 1u);
}

TEST(SnapshotIntegration, EwmaMetricSnapshotConsistent) {
  NetworkOptions opt;
  opt.metric = sw::MetricKind::EwmaInterarrival;
  Network net(net::make_leaf_spine(2, 2, 3), opt);
  auto gens = start_all_to_all(net, 100000);
  net.run_for(sim::msec(10));
  const snap::GlobalSnapshot* snap = net.take_snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->complete);
  // Loaded units report a plausible interarrival EWMA.
  std::size_t nonzero = 0;
  for (const auto& [unit, r] : snap->reports) {
    nonzero += r.local_value > 0;
  }
  EXPECT_GT(nonzero, 10u);
}

TEST(SnapshotIntegration, SynchronizationWellUnderPollingSweep) {
  // The headline claim: snapshot spread is orders of magnitude tighter
  // than a sequential polling sweep of the same units.
  Network net(net::make_leaf_spine(2, 2, 3), NetworkOptions{});
  auto gens = start_all_to_all(net);
  net.register_all_units_for_polling();
  net.run_for(sim::msec(5));
  const snap::GlobalSnapshot* snap = net.take_snapshot();
  ASSERT_NE(snap, nullptr);
  const auto sweeps = core::run_polling_campaign(net, 1, sim::msec(1));
  ASSERT_EQ(sweeps.size(), 1u);
  EXPECT_LT(snap->advance_span(), sim::usec(100));
  EXPECT_GT(sweeps[0].span(), sim::msec(1));
}

}  // namespace
}  // namespace speedlight
