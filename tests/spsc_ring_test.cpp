// SpscRing: capacity rounding, FIFO order across wraparound, backpressure
// (try_push fails when full, recovers after pops), move-only payloads, and
// a two-thread producer/consumer stress run.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sim/spsc_ring.hpp"

namespace speedlight::sim {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscRing<int>(1024).capacity(), 1024u);
}

TEST(SpscRing, FifoOrderAcrossManyWraparounds) {
  SpscRing<int> ring(4);  // Tiny, so every few pushes wrap the indices.
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 1000; ++round) {
    // Push a burst (as much as fits), then drain half of it.
    while (ring.try_push(next_push + 0)) ++next_push;
    int out = -1;
    for (std::size_t i = 0; i < ring.capacity() / 2; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  int out = -1;
  while (ring.try_pop(out)) {
    EXPECT_EQ(out, next_pop);
    ++next_pop;
  }
  EXPECT_EQ(next_pop, next_push);
  EXPECT_GT(next_push, 1000);  // Far more traffic than capacity.
}

TEST(SpscRing, BackpressureFailsWhenFullAndRecovers) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i + 0));
  EXPECT_FALSE(ring.try_push(99));  // Full: push refused, ring unchanged.
  EXPECT_EQ(ring.size(), 4u);

  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(4));  // One slot freed.
  EXPECT_FALSE(ring.try_push(99));

  for (int expect = 1; expect <= 4; ++expect) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, expect);
  }
  EXPECT_FALSE(ring.try_pop(out));  // Empty again.
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(2);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(SpscRing, BatchedDrainConsumesSnapshotInFifoOrder) {
  SpscRing<int> ring(4);
  std::vector<int> got;
  const auto sink = [&got](int&& v) { got.push_back(v); };

  EXPECT_EQ(ring.drain(sink), 0u);  // Empty drain is a no-op.

  for (int i = 0; i < 3; ++i) EXPECT_TRUE(ring.try_push(i + 0));
  EXPECT_EQ(ring.drain(sink), 3u);
  EXPECT_TRUE(ring.empty());

  // Repeated bursts wrap the indices; each drain takes the whole window.
  for (int round = 0; round < 100; ++round) {
    const int base = 3 + round * 4;
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(base + i));
    EXPECT_EQ(ring.drain(sink), 4u);
  }
  ASSERT_EQ(got.size(), 403u);
  for (int i = 0; i < 403; ++i) EXPECT_EQ(got[i], i);
}

TEST(SpscRing, BatchedDrainFreesSlotsForTheProducer) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i + 0));
  EXPECT_FALSE(ring.try_push(99));
  int sum = 0;
  EXPECT_EQ(ring.drain([&sum](int&& v) { sum += v; }), 4u);
  EXPECT_EQ(sum, 6);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i + 0));
}

TEST(SpscRing, TwoThreadStressWithBatchedDrainPreservesOrder) {
  constexpr std::uint64_t kCount = 200'000;
  SpscRing<std::uint64_t> ring(64);
  std::uint64_t received = 0;
  std::uint64_t order_errors = 0;
  std::uint64_t batches = 0;

  std::thread consumer([&] {
    std::uint64_t expect = 0;
    while (expect < kCount) {
      const std::size_t n = ring.drain([&](std::uint64_t&& v) {
        if (v != expect) ++order_errors;
        ++expect;
        ++received;
      });
      if (n == 0) {
        std::this_thread::yield();
      } else {
        ++batches;
      }
    }
  });

  for (std::uint64_t i = 0; i < kCount;) {
    if (ring.try_push(i + 0)) {
      ++i;
    } else {
      std::this_thread::yield();
    }
  }
  consumer.join();

  EXPECT_EQ(received, kCount);
  EXPECT_EQ(order_errors, 0u);
  EXPECT_LE(batches, kCount);  // Batching: never more drains than items.
}

TEST(SpscRing, TwoThreadStressPreservesOrder) {
  constexpr std::uint64_t kCount = 200'000;
  SpscRing<std::uint64_t> ring(64);
  std::uint64_t received = 0;
  std::uint64_t order_errors = 0;

  std::thread consumer([&] {
    std::uint64_t expect = 0;
    std::uint64_t v = 0;
    while (expect < kCount) {
      if (ring.try_pop(v)) {
        if (v != expect) ++order_errors;
        ++expect;
        ++received;
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (std::uint64_t i = 0; i < kCount;) {
    if (ring.try_push(i + 0)) {
      ++i;
    } else {
      std::this_thread::yield();
    }
  }
  consumer.join();

  EXPECT_EQ(received, kCount);
  EXPECT_EQ(order_errors, 0u);
}

}  // namespace
}  // namespace speedlight::sim
