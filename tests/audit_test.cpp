// Ground-truth audit tests: internal-channel flow conservation via
// SwitchAudit hooks, stamp monotonicity, and CoS sub-channel consistency.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "net/topology.hpp"
#include "test_topologies.hpp"
#include "workload/basic.hpp"

namespace speedlight {
namespace {

using core::Network;
using core::NetworkOptions;

/// Records, per egress unit and snapshot id, how many counted packets were
/// committed to its internal channels pre-snapshot (stamp < id), plus the
/// queue drops that would break conservation.
class ConservationAudit final : public sw::SwitchAudit {
 public:
  void on_internal_send(net::NodeId swid, net::PortId /*in*/, net::PortId out,
                        std::uint64_t vsid, bool counts) override {
    if (!counts) return;
    // The packet is pre-snapshot for every id > vsid: record its stamp and
    // resolve per-id counts lazily.
    stamps_[key(swid, out)].push_back(vsid);
  }
  void on_queue_drop(net::NodeId swid, net::PortId out) override {
    ++drops_[key(swid, out)];
  }

  /// Packets sent into (switch, egress port)'s internal channels with
  /// stamp < id.
  [[nodiscard]] std::uint64_t sent_pre(net::NodeId swid, net::PortId out,
                                       std::uint64_t id) const {
    const auto it = stamps_.find(key(swid, out));
    if (it == stamps_.end()) return 0;
    std::uint64_t n = 0;
    for (const auto s : it->second) n += s < id;
    return n;
  }
  [[nodiscard]] std::uint64_t drops(net::NodeId swid, net::PortId out) const {
    const auto it = drops_.find(key(swid, out));
    return it == drops_.end() ? 0 : it->second;
  }

 private:
  static std::uint64_t key(net::NodeId swid, net::PortId out) {
    return (static_cast<std::uint64_t>(swid) << 16) | out;
  }
  std::map<std::uint64_t, std::vector<std::uint64_t>> stamps_;
  std::map<std::uint64_t, std::uint64_t> drops_;
};

TEST(AuditConservation, InternalChannelsConserveFlow) {
  NetworkOptions opt;
  opt.seed = 31;
  opt.snapshot.channel_state = true;
  Network net(testing::make_test_topo(testing::TopoKind::LeafSpine), opt);
  ConservationAudit audit;
  for (std::size_t s = 0; s < net.num_switches(); ++s) {
    net.switch_at(s).set_audit(&audit);
  }

  std::vector<std::unique_ptr<wl::Generator>> gens;
  for (std::size_t h = 0; h < net.num_hosts(); ++h) {
    auto g = std::make_unique<wl::PoissonGenerator>(
        net.simulator(), net.host(h),
        std::vector<net::NodeId>{net.host_id((h + 1) % 4),
                                 net.host_id((h + 2) % 4)},
        60000, 900, sim::Rng(77 + h));
    g->start(net.now());
    gens.push_back(std::move(g));
  }
  net.run_for(sim::msec(2));
  const auto campaign = core::run_snapshot_campaign(net, 6, sim::msec(3));
  const auto results = campaign.results(net);
  ASSERT_EQ(results.size(), 6u);

  // For every egress unit u and consistent snapshot i:
  //   sent_pre(i, internal channels of u) == value(u, i) + channel(u, i)
  // provided nothing was dropped at u's queue (true here: light load).
  for (const auto* snap : results) {
    for (net::NodeId swid = 0; swid < net.num_switches(); ++swid) {
      const auto ports = net.switch_at(swid).options().num_ports;
      for (net::PortId p = 0; p < ports; ++p) {
        ASSERT_EQ(audit.drops(swid, p), 0u);
        const auto it = snap->reports.find({swid, p, net::Direction::Egress});
        ASSERT_NE(it, snap->reports.end());
        if (!it->second.consistent) continue;
        EXPECT_EQ(audit.sent_pre(swid, p, snap->id),
                  it->second.local_value + it->second.channel_value)
            << "snapshot " << snap->id << " switch " << swid << " port " << p;
      }
    }
  }
}

TEST(AuditConservation, StampsNeverExceedReceiverSid) {
  // The causal-cut invariant in its rawest form: no unit ever emits a
  // packet stamped beyond its own id, and external receivers catch up to
  // at least the stamp before counting (checked implicitly by the
  // conservation equalities; here we check emitted stamps directly).
  NetworkOptions opt;
  opt.seed = 32;
  opt.snapshot.channel_state = true;
  Network net(testing::make_test_topo(testing::TopoKind::Line), opt);

  struct StampAudit final : sw::SwitchAudit {
    std::uint64_t max_stamp = 0;
    void on_external_send(net::NodeId, net::PortId, std::uint64_t vsid,
                          bool) override {
      max_stamp = std::max(max_stamp, vsid);
    }
  } audit;
  for (std::size_t s = 0; s < net.num_switches(); ++s) {
    net.switch_at(s).set_audit(&audit);
  }
  wl::CbrGenerator gen(net.simulator(), net.host(0), net.host_id(1), 1, 2e9,
                       1200);
  gen.start(net.now());
  net.run_for(sim::msec(2));
  const auto campaign = core::run_snapshot_campaign(net, 5, sim::msec(3));
  EXPECT_EQ(campaign.results(net).size(), 5u);
  // No packet ever carried an id beyond the highest initiated snapshot.
  EXPECT_LE(audit.max_stamp, 5u);
}

TEST(CosChannels, TwoClassSnapshotStaysConsistent) {
  // With two CoS classes, each internal channel splits into two FIFO
  // sub-channels (Figure 2); markers must stay per-sub-channel monotone
  // and conservation must hold across the union.
  NetworkOptions opt;
  opt.seed = 33;
  opt.snapshot.channel_state = true;
  opt.cos_classes = 2;
  opt.classifier = [](const net::Packet& p) {
    return static_cast<std::size_t>(p.flow % 2);  // odd flows: class 1
  };
  net::TopologySpec spec = check::make_topo(check::TopoKind::Line, 2);
  Network net(spec, opt);
  // Flow 1 (class 1) and flow 2 (class 0) cross the trunk in opposite
  // directions: markers traverse both sub-channels of each internal
  // channel, and consistency must hold across the interleave.
  std::vector<std::unique_ptr<wl::Generator>> gens;
  for (std::size_t h = 0; h < 2; ++h) {
    auto g = std::make_unique<wl::CbrGenerator>(
        net.simulator(), net.host(h), net.host_id(1 - h),
        static_cast<net::FlowId>(h + 1), 3e9, 1200);
    g->start(net.now());
    gens.push_back(std::move(g));
  }
  net.run_for(sim::msec(2));
  const auto campaign = core::run_snapshot_campaign(net, 6, sim::msec(3));
  const auto results = campaign.results(net);
  ASSERT_EQ(results.size(), 6u);
  for (const auto* snap : results) {
    EXPECT_TRUE(snap->all_consistent());
    // Trunk conservation, same as the single-class case.
    const auto eg = snap->reports.find({0, 2, net::Direction::Egress});
    const auto in = snap->reports.find({1, 1, net::Direction::Ingress});
    ASSERT_NE(eg, snap->reports.end());
    ASSERT_NE(in, snap->reports.end());
    EXPECT_EQ(eg->second.local_value,
              in->second.local_value + in->second.channel_value);
  }
}

TEST(CosChannels, PriorityClassesDrainFirstEndToEnd) {
  // Verify CoS scheduling itself through a switch under contention: the
  // high-priority class suffers much less queueing delay.
  sw::SwitchOptions so;
  so.num_ports = 3;
  so.snapshot_enabled = false;
  so.cos_classes = 2;
  so.classifier = [](const net::Packet& p) {
    return static_cast<std::size_t>(p.flow % 2);  // odd flows: class 1
  };
  so.queue_capacity = 4096;

  sim::Simulator sim;
  sim::TimingModel timing;
  sw::Switch swch(sim, 0, "s", timing, so, sim::Rng(1));
  net::Host fast(sim, 10, "fast");
  net::Host slow(sim, 11, "slow");
  net::Host sink(sim, 12, "sink");
  net::Link up_fast(sim, 25e9, sim::nsec(500), sim::Rng(2));
  net::Link up_slow(sim, 25e9, sim::nsec(500), sim::Rng(3));
  net::Link down(sim, 2e9, sim::nsec(500), sim::Rng(4));  // Bottleneck.
  up_fast.connect(&swch, 0);
  up_slow.connect(&swch, 1);
  down.connect(&sink, 0);
  fast.attach_uplink(&up_fast);
  slow.attach_uplink(&up_slow);
  swch.attach_link(2, &down, /*to_host=*/true);
  swch.set_route(12, {2});
  swch.finalize();

  sim::SimTime last_fast = 0;
  sim::SimTime last_slow = 0;
  sink.set_receive_callback([&](const net::Packet& p, sim::SimTime t) {
    (last_fast = p.flow % 2 == 0 ? t : last_fast,
     last_slow = p.flow % 2 == 1 ? t : last_slow);
  });
  // Both hosts blast 200 packets at the 2G bottleneck simultaneously.
  for (int i = 0; i < 200; ++i) {
    fast.send(12, 2, 1500);  // flow 2 -> class 0 (high)
    slow.send(12, 3, 1500);  // flow 3 -> class 1 (low)
  }
  sim.run_until(sim::sec(1));
  EXPECT_GT(last_fast, 0);
  EXPECT_GT(last_slow, 0);
  // Strict priority: the last high-priority packet leaves well before the
  // last low-priority one.
  EXPECT_LT(last_fast, last_slow - sim::usec(500));
}

}  // namespace
}  // namespace speedlight
