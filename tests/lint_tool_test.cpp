// Golden test for tools/lint: every fixture under tests/lint_fixtures/
// carries its expected diagnostics inline (`// LINT-EXPECT: rule-a, rule-b`
// on the offending line, or `// LINT-EXPECT-PREV: ...` on the line after a
// malformed pragma), and the linter must report exactly that set — same
// rules, same lines, nothing extra. Clean fixtures must report nothing.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace speedlight {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read " << p;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// (line, rule) pairs parsed from LINT-EXPECT / LINT-EXPECT-PREV markers.
std::set<std::pair<std::size_t, std::string>> expectations(
    const std::string& content) {
  std::set<std::pair<std::size_t, std::string>> out;
  std::istringstream in(content);
  std::string line;
  for (std::size_t n = 1; std::getline(in, line); ++n) {
    for (const auto& [marker, offset] :
         {std::pair<std::string, std::size_t>{"LINT-EXPECT-PREV:", 1},
          std::pair<std::string, std::size_t>{"LINT-EXPECT:", 0}}) {
      const std::size_t m = line.find(marker);
      if (m == std::string::npos) continue;
      std::stringstream rules(line.substr(m + marker.size()));
      std::string rule;
      while (std::getline(rules, rule, ',')) {
        const std::size_t b = rule.find_first_not_of(' ');
        const std::size_t e = rule.find_last_not_of(' ');
        if (b == std::string::npos) continue;
        out.emplace(n - offset, rule.substr(b, e - b + 1));
      }
      break;  // -PREV contains the plain marker; don't parse it twice.
    }
  }
  return out;
}

std::set<std::pair<std::size_t, std::string>> actual(
    const std::vector<lint::Diagnostic>& diags) {
  std::set<std::pair<std::size_t, std::string>> out;
  for (const auto& d : diags) out.emplace(d.line, d.rule);
  return out;
}

/// Fixtures named datapath_* are scanned as if they lived on the data
/// path; sim_* as if under src/sim/ (the concurrency-rule scope).
std::string synthetic_path(const std::string& basename) {
  if (basename.rfind("datapath_", 0) == 0) return "src/switchlib/" + basename;
  if (basename.rfind("sim_", 0) == 0) return "src/sim/" + basename;
  return "src/check/" + basename;
}

TEST(LintTool, FixturesProduceExactlyTheMarkedDiagnostics) {
  const fs::path dir = SPEEDLIGHT_LINT_FIXTURE_DIR;
  std::size_t fixtures = 0;
  std::size_t seeded = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".cpp") continue;
    ++fixtures;
    const std::string content = read_file(entry.path());
    const std::string name = entry.path().filename().string();
    const auto expected = expectations(content);
    const auto got = actual(lint::scan_content(synthetic_path(name), content));
    EXPECT_EQ(got, expected) << "fixture " << name;
    seeded += expected.size();
    if (name.find("_clean") != std::string::npos) {
      EXPECT_TRUE(expected.empty())
          << name << ": clean fixtures must not carry LINT-EXPECT markers";
    }
  }
  EXPECT_GE(fixtures, 11u) << "fixture directory looks incomplete";
  EXPECT_GE(seeded, 24u) << "seeded violations went missing";
}

TEST(LintTool, DatapathRulesRelaxOffTheDataPath) {
  const fs::path file =
      fs::path(SPEEDLIGHT_LINT_FIXTURE_DIR) / "datapath_violation.cpp";
  const std::string content = read_file(file);
  // Same bytes, control-plane path: only the repo-wide rule remains.
  const auto got = actual(lint::scan_content("src/check/moved.cpp", content));
  for (const auto& [line, rule] : got) {
    EXPECT_EQ(rule, "raw-new-delete") << "line " << line;
  }
  EXPECT_FALSE(got.empty());
}

TEST(LintTool, DatapathClassification) {
  EXPECT_TRUE(lint::is_datapath("src/net/link.hpp"));
  EXPECT_TRUE(lint::is_datapath("/abs/repo/src/switchlib/switch.cpp"));
  EXPECT_TRUE(lint::is_datapath("src/snapshot/dataplane.cpp"));
  EXPECT_TRUE(lint::is_datapath("src/snapshot/typestate.hpp"));
  EXPECT_FALSE(lint::is_datapath("src/snapshot/observer.hpp"));
  EXPECT_FALSE(lint::is_datapath("src/snapshot/control_plane.hpp"));
  EXPECT_FALSE(lint::is_datapath("src/sim/event_queue.cpp"));
  EXPECT_FALSE(lint::is_datapath("bench/speedlight_fuzz.cpp"));
}

TEST(LintTool, ProfilerScopeCoversDatapathAndEngines) {
  EXPECT_TRUE(lint::is_profiler_scope("src/sim/parallel.cpp"));
  EXPECT_TRUE(lint::is_profiler_scope("/abs/repo/src/sim/parallel.hpp"));
  EXPECT_TRUE(lint::is_profiler_scope("src/net/link.hpp"));
  EXPECT_FALSE(lint::is_profiler_scope("src/obs/prof.cpp"));
  EXPECT_FALSE(lint::is_profiler_scope("bench/perf_parallel.cpp"));
}

TEST(LintTool, ProfilerRuleRelaxesOutsideItsScope) {
  const fs::path file = fs::path(SPEEDLIGHT_LINT_FIXTURE_DIR) /
                        "datapath_profiler_guard_violation.cpp";
  const std::string content = read_file(file);
  // Same bytes under src/obs (the profiler's own home): no diagnostics —
  // the guard discipline is a call-site rule, not an implementation rule.
  EXPECT_TRUE(lint::scan_content("src/obs/moved.cpp", content).empty());
}

TEST(LintTool, ConcurrencyScopeClassification) {
  EXPECT_TRUE(lint::is_concurrency_scope("src/sim/spsc_ring.hpp"));
  EXPECT_TRUE(lint::is_concurrency_scope("/abs/repo/src/sim/parallel.cpp"));
  EXPECT_TRUE(lint::is_concurrency_scope("src/obs/prof.hpp"));
  EXPECT_TRUE(lint::is_concurrency_scope("src/net/link.hpp"));
  EXPECT_FALSE(lint::is_concurrency_scope("src/check/fuzzer.cpp"));
  EXPECT_FALSE(lint::is_concurrency_scope("src/stats/histogram.cpp"));
}

TEST(LintTool, ConcurrencyRulesRelaxOutsideTheirScope) {
  const fs::path dir = SPEEDLIGHT_LINT_FIXTURE_DIR;
  for (const char* name :
       {"sim_memory_order_violation.cpp", "sim_shared_member_violation.cpp"}) {
    const std::string content = read_file(dir / name);
    // Same bytes under src/check (no threads there): nothing to report.
    EXPECT_TRUE(lint::scan_content("src/check/moved.cpp", content).empty())
        << name;
  }
}

TEST(LintTool, RuleTableIsConsistent) {
  std::set<std::string> names;
  for (const auto& r : lint::rules()) {
    EXPECT_TRUE(names.insert(r.name).second) << "duplicate rule " << r.name;
    EXPECT_NE(std::string(r.summary), "");
  }
  EXPECT_GE(names.size(), 11u);
}

}  // namespace
}  // namespace speedlight
