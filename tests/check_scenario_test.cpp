// Scenario generation and (de)serialization: determinism, exact round-trip,
// and parser diagnostics for the fuzzer's .scenario text format.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "check/scenario.hpp"

namespace speedlight {
namespace {

TEST(Scenario, GenerationIsDeterministic) {
  for (std::uint64_t seed : {1ULL, 42ULL, 7777ULL, 0xDEADBEEFULL}) {
    const auto a = check::generate_scenario(seed);
    const auto b = check::generate_scenario(seed);
    EXPECT_EQ(check::scenario_to_string(a), check::scenario_to_string(b));
    EXPECT_EQ(a.seed, seed);
  }
}

TEST(Scenario, DifferentSeedsDiffer) {
  const auto a = check::generate_scenario(1);
  const auto b = check::generate_scenario(2);
  EXPECT_NE(check::scenario_to_string(a), check::scenario_to_string(b));
}

TEST(Scenario, RoundTripsByteIdentically) {
  // The shrinker ships reproducers as files; a reproducer that parses into
  // a different simulation than the in-memory scenario would be useless.
  // Everything the generator draws is quantized to exactly representable
  // decimals, so text -> Scenario -> text is a fixpoint.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const auto s = check::generate_scenario(seed);
    const std::string text = check::scenario_to_string(s);
    const auto parsed = check::scenario_from_string(text);
    EXPECT_EQ(check::scenario_to_string(parsed), text) << "seed " << seed;
  }
}

TEST(Scenario, GeneratedTopologiesAreValid) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const auto s = check::generate_scenario(seed);
    const auto spec = s.topology();
    EXPECT_GE(spec.switches.size(), 2u) << "seed " << seed;
    EXPECT_GE(spec.hosts.size(), 2u) << "seed " << seed;
  }
}

TEST(Scenario, ParserRejectsMissingHeader) {
  EXPECT_THROW((void)check::scenario_from_string("seed 1\n"),
               std::invalid_argument);
}

TEST(Scenario, ParserRejectsUnknownDirective) {
  try {
    (void)check::scenario_from_string("scenario v1\nfoo bar\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // Diagnostics carry the line number.
    EXPECT_NE(std::string(e.what()).find("2"), std::string::npos);
  }
}

TEST(Scenario, ParserRejectsMalformedFault) {
  EXPECT_THROW(
      (void)check::scenario_from_string("scenario v1\nfault link_flap oops\n"),
      std::invalid_argument);
}

TEST(Scenario, ParserAcceptsCommentsAndBlankLines) {
  const auto s = check::generate_scenario(3);
  const std::string text =
      "# a comment\n\n" + check::scenario_to_string(s) + "\n# trailing\n";
  const auto parsed = check::scenario_from_string(text);
  EXPECT_EQ(check::scenario_to_string(parsed), check::scenario_to_string(s));
}

TEST(Scenario, MixTokenRoundTripsAndDefaultsOff) {
  // Non-default mixes serialize as a trailing token on the workload line;
  // the default (all_to_all) is omitted so pre-mix files stay
  // byte-identical through a round trip.
  check::Scenario s = check::generate_scenario(9);
  s.workload.mix = check::MixKind::Shuffle;
  const std::string text = check::scenario_to_string(s);
  EXPECT_NE(text.find(" shuffle\n"), std::string::npos);
  const auto parsed = check::scenario_from_string(text);
  EXPECT_EQ(parsed.workload.mix, check::MixKind::Shuffle);
  EXPECT_EQ(check::scenario_to_string(parsed), text);

  s.workload.mix = check::MixKind::AllToAll;
  const std::string plain = check::scenario_to_string(s);
  EXPECT_EQ(plain.find("all_to_all"), std::string::npos);
  EXPECT_EQ(check::scenario_from_string(plain).workload.mix,
            check::MixKind::AllToAll);
}

TEST(Scenario, ParserRejectsUnknownMix) {
  const std::string text =
      "scenario v1\nworkload 4 40000 1000 carrier_pigeon\n";
  EXPECT_THROW((void)check::scenario_from_string(text),
               std::invalid_argument);
}

TEST(Scenario, BudgetedGenerationIsDeterministicAndBounded) {
  const check::ScenarioBudget budget;
  bool saw_k16 = false;
  bool saw_mix = false;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const auto a = check::generate_scenario(seed, budget);
    const auto b = check::generate_scenario(seed, budget);
    EXPECT_EQ(check::scenario_to_string(a), check::scenario_to_string(b));
    EXPECT_LE(a.topology().switches.size(), budget.max_switches);
    EXPECT_LE(a.snapshots, budget.max_snapshots);
    // Budgeted scenarios must replay through the file format too.
    EXPECT_EQ(check::scenario_to_string(
                  check::scenario_from_string(check::scenario_to_string(a))),
              check::scenario_to_string(a));
    saw_k16 |= a.topo == check::TopoKind::FatTree && a.size_a == 16;
    saw_mix |= a.workload.mix != check::MixKind::AllToAll;
  }
  // The sampler actually reaches production scale and the new mixes.
  EXPECT_TRUE(saw_k16);
  EXPECT_TRUE(saw_mix);
}

TEST(Scenario, BudgetExcludesOversizedFabrics) {
  check::ScenarioBudget tight;
  tight.max_switches = 100;  // Excludes fat-tree k=16 (320 switches).
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto s = check::generate_scenario(seed, tight);
    EXPECT_LE(s.topology().switches.size(), tight.max_switches);
  }
}

}  // namespace
}  // namespace speedlight
