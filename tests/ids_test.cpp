// Snapshot-id arithmetic: wire<->virtual mapping and rollover handling.
#include <gtest/gtest.h>

#include "snapshot/ids.hpp"

namespace speedlight::snap {
namespace {

TEST(SidSpace, UnboundedPassThrough) {
  const SidSpace s(0);
  EXPECT_EQ(s.modulus(), std::uint64_t{1} << 32);
  EXPECT_EQ(s.to_wire(12345), 12345u);
  EXPECT_EQ(s.unroll_monotonic(100, 105), 105u);
  EXPECT_EQ(s.unroll_serial(100, 95), 95u);
}

TEST(SidSpace, WireWraps) {
  const SidSpace s(8);
  EXPECT_EQ(s.to_wire(0), 0u);
  EXPECT_EQ(s.to_wire(7), 7u);
  EXPECT_EQ(s.to_wire(8), 0u);
  EXPECT_EQ(s.to_wire(17), 1u);
}

TEST(SidSpace, MonotonicUnrollBasics) {
  const SidSpace s(8);
  // Reference 10 (wire 2): wire 2 -> 10 itself, wire 3 -> 11, wire 1 -> 17.
  EXPECT_EQ(s.unroll_monotonic(10, 2), 10u);
  EXPECT_EQ(s.unroll_monotonic(10, 3), 11u);
  EXPECT_EQ(s.unroll_monotonic(10, 1), 17u);
}

TEST(SidSpace, MonotonicUnrollSupportsSpreadModulusMinusOne) {
  const SidSpace s(8);
  // The sender may be up to modulus-1 ahead of the reference.
  for (VirtualSid ref = 0; ref < 40; ++ref) {
    for (std::uint64_t ahead = 0; ahead < 8; ++ahead) {
      const VirtualSid actual = ref + ahead;
      EXPECT_EQ(s.unroll_monotonic(ref, s.to_wire(actual)), actual)
          << "ref=" << ref << " ahead=" << ahead;
    }
  }
}

TEST(SidSpace, MonotonicUnrollNeverRegresses) {
  const SidSpace s(16);
  for (VirtualSid ref = 0; ref < 64; ++ref) {
    for (WireSid w = 0; w < 16; ++w) {
      EXPECT_GE(s.unroll_monotonic(ref, w), ref);
    }
  }
}

TEST(SidSpace, SerialUnrollBothDirections) {
  const SidSpace s(16);
  // Within +/- modulus/2 of the reference, values resolve exactly.
  for (VirtualSid ref = 20; ref < 60; ++ref) {
    for (std::int64_t delta = -7; delta <= 7; ++delta) {
      const VirtualSid actual = ref + delta;
      EXPECT_EQ(s.unroll_serial(ref, s.to_wire(actual)), actual)
          << "ref=" << ref << " delta=" << delta;
    }
  }
}

TEST(SidSpace, SerialUnrollClampsBelowZero) {
  const SidSpace s(16);
  // Reference 2, wire of "actual -5" is ambiguous; the implementation never
  // goes negative.
  const VirtualSid v = s.unroll_serial(2, s.to_wire(11 + 16));  // wire 11
  EXPECT_GE(v, 0u);
}

TEST(SidSpace, SerialUnrollEarlyRun) {
  const SidSpace s(16);
  // At the very start (local sid 0), small wire ids resolve to themselves.
  EXPECT_EQ(s.unroll_serial(0, 0), 0u);
  EXPECT_EQ(s.unroll_serial(0, 1), 1u);
  EXPECT_EQ(s.unroll_serial(0, 7), 7u);
  EXPECT_EQ(s.unroll_serial(3, 1), 1u);
}

TEST(SidSpace, MaxSpreadMatchesVariant) {
  const SidSpace s(16);
  EXPECT_EQ(s.max_spread(/*channel_state=*/true), 15u);
  EXPECT_EQ(s.max_spread(/*channel_state=*/false), 7u);
}

TEST(SidSpace, RolloverRoundTripLongRun) {
  // A long monotone run of ids, communicated wire-only hop by hop, is
  // reconstructed exactly when consecutive increments stay < modulus.
  const SidSpace s(8);
  VirtualSid reference = 0;
  VirtualSid actual = 0;
  const std::uint64_t increments[] = {1, 3, 7, 2, 1, 1, 6, 5, 4, 7, 1};
  for (const auto inc : increments) {
    actual += inc;
    reference = s.unroll_monotonic(reference, s.to_wire(actual));
    EXPECT_EQ(reference, actual);
  }
}

}  // namespace
}  // namespace speedlight::snap
