// Section 6, "Node attachment": devices registered with the observer
// mid-operation join from the next snapshot on; their state starts at 0
// and jumps ahead on the first marker; spurious completions for snapshots
// they were never part of are ignored.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/timing_model.hpp"
#include "snapshot/control_plane.hpp"
#include "snapshot/dataplane.hpp"
#include "snapshot/observer.hpp"
#include "snapshot/unit_handle.hpp"

namespace speedlight::snap {
namespace {

// Minimal device: one ingress unit behind a control plane, initiations
// applied directly.
class MiniDevice {
 public:
  MiniDevice(sim::Simulator& sim, const sim::TimingModel& timing,
             net::NodeId id, const SnapshotConfig& config)
      : unit_(sim, id, config), cp_(sim, id, "dev" + std::to_string(id),
                                    timing, options_for(config), sim::Rng(id)) {
    unit_.notify = [this](const Notification& n) { cp_.on_notification(n); };
    cp_.add_unit(&unit_, {false, false});
  }

  [[nodiscard]] ControlPlane& cp() { return cp_; }
  /// A marker-carrying packet from a neighbor already at wire sid `sid`.
  void deliver_marker(WireSid sid) { unit_.packet(sid); }
  [[nodiscard]] VirtualSid sid() const { return unit_.dp().virtual_sid(); }

 private:
  static ControlPlane::Options options_for(const SnapshotConfig& config) {
    ControlPlane::Options o;
    o.snapshot = config;
    return o;
  }

  class Unit final : public UnitHandle {
   public:
    Unit(sim::Simulator& sim, net::NodeId id, const SnapshotConfig& config)
        : sim_(sim),
          dp_(net::UnitId{id, 0, net::Direction::Ingress}, config, 2, 1,
              [this]() { return state; },
              [](const PacketView&) { return std::uint64_t{1}; },
              [this](const Notification& n) {
                if (notify) notify(n);
              }) {}

    [[nodiscard]] net::UnitId unit_id() const override { return dp_.id(); }
    [[nodiscard]] bool is_ingress() const override { return true; }
    [[nodiscard]] std::uint16_t num_channels() const override { return 2; }
    [[nodiscard]] std::uint16_t cpu_channel() const override { return 1; }
    void inject_initiation(WireSid sid) override {
      sim_.after(sim::usec(2),
                 [this, sid]() { dp_.on_initiation(sid, sim_.now()); });
    }
    void inject_probe() override {}
    [[nodiscard]] SlotValue read_value_slot(std::size_t i) const override {
      return dp_.read_slot(i);
    }
    [[nodiscard]] WireSid read_sid_register() const override {
      return dp_.sid_register();
    }
    [[nodiscard]] WireSid read_last_seen_register(std::uint16_t ch) const override {
      return dp_.last_seen_register(ch);
    }
    [[nodiscard]] std::uint64_t read_live_counter() const override {
      return state;
    }
    void packet(WireSid sid) {
      PacketView v;
      v.wire_sid = sid;
      dp_.on_packet(v, 0, sim_.now());
      ++state;
    }
    [[nodiscard]] const DataplaneUnit& dp() const { return dp_; }

    std::uint64_t state = 0;
    std::function<void(const Notification&)> notify;

   private:
    sim::Simulator& sim_;
    DataplaneUnit dp_;
  };

  Unit unit_;
  ControlPlane cp_;
};

TEST(NodeAttachment, LateDeviceJoinsNextSnapshot) {
  sim::Simulator sim;
  sim::TimingModel timing;
  SnapshotConfig config;  // No channel state: completion on advance.
  Observer::Options obs_options;
  obs_options.snapshot = config;
  obs_options.completion_timeout = sim::msec(100);
  Observer observer(sim, timing, obs_options);

  MiniDevice a(sim, timing, 1, config);
  observer.register_device(&a.cp());

  // Snapshot 1: only device A exists.
  const auto s1 = observer.request_snapshot(sim.now() + sim::msec(1));
  ASSERT_TRUE(s1.has_value());
  sim.run_until(sim::msec(10));
  const GlobalSnapshot* snap1 = observer.result(*s1);
  ASSERT_NE(snap1, nullptr);
  EXPECT_TRUE(snap1->complete);
  EXPECT_EQ(snap1->reports.size(), 1u);

  // Device B attaches: state initialized to 0 (Section 6).
  MiniDevice b(sim, timing, 2, config);
  observer.register_device(&b.cp());
  EXPECT_EQ(b.sid(), 0u);

  // Traffic from A's epoch reaches B before any initiation: B jumps ahead.
  b.deliver_marker(1);
  EXPECT_EQ(b.sid(), 1u);
  sim.run_until(sim::msec(20));
  // B's report for snapshot 1 is spurious (B was not in the device set):
  // snapshot 1 must be unchanged.
  EXPECT_EQ(observer.result(*s1)->reports.size(), 1u);

  // Snapshot 2 covers both devices.
  const auto s2 = observer.request_snapshot(sim.now() + sim::msec(1));
  ASSERT_TRUE(s2.has_value());
  sim.run_until(sim.now() + sim::msec(20));
  const GlobalSnapshot* snap2 = observer.result(*s2);
  ASSERT_NE(snap2, nullptr);
  EXPECT_TRUE(snap2->complete);
  EXPECT_EQ(snap2->reports.size(), 2u);
  EXPECT_TRUE(snap2->excluded_devices.empty());
}

TEST(NodeAttachment, OutstandingSnapshotUnaffectedByAttachment) {
  sim::Simulator sim;
  sim::TimingModel timing;
  SnapshotConfig config;
  Observer::Options obs_options;
  obs_options.snapshot = config;
  obs_options.completion_timeout = sim::msec(100);
  Observer observer(sim, timing, obs_options);
  MiniDevice a(sim, timing, 1, config);
  observer.register_device(&a.cp());

  // Request a snapshot, then attach B *before* it completes.
  const auto s1 = observer.request_snapshot(sim.now() + sim::msec(5));
  ASSERT_TRUE(s1.has_value());
  MiniDevice b(sim, timing, 2, config);
  observer.register_device(&b.cp());

  sim.run_until(sim::msec(50));
  const GlobalSnapshot* snap1 = observer.result(*s1);
  ASSERT_NE(snap1, nullptr);
  // Completes with A alone — B (which never got the schedule) neither
  // blocks completion nor is reported missing.
  EXPECT_TRUE(snap1->complete);
  EXPECT_TRUE(snap1->excluded_devices.empty());
  EXPECT_EQ(snap1->reports.size(), 1u);
}

}  // namespace
}  // namespace speedlight::snap
