// Unit tests for the per-processing-unit snapshot state machine
// (Figure 3 semantics, hardware constraints, wraparound, notifications).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "snapshot/dataplane.hpp"
#include "snapshot/ideal.hpp"

namespace speedlight::snap {
namespace {

constexpr net::UnitId kUnit{1, 2, net::Direction::Ingress};

struct Harness {
  explicit Harness(SnapshotConfig config, std::uint16_t channels = 2,
                   std::uint16_t cpu = 1)
      : unit(kUnit, config, channels, cpu, [this]() { return state; },
             [](const PacketView&) { return std::uint64_t{1}; },
             [this](const Notification& n) { notifications.push_back(n); }) {}

  std::uint64_t state = 0;
  std::vector<Notification> notifications;
  DataplaneUnit unit;

  WireSid packet(WireSid sid, std::uint16_t channel = 0, bool counts = true,
                 sim::SimTime now = 0) {
    PacketView v;
    v.wire_sid = sid;
    v.counts_for_metrics = counts;
    return unit.on_packet(v, channel, now);
  }
};

SnapshotConfig cs_config(std::uint32_t modulus = 0, bool hardware = true) {
  SnapshotConfig c;
  c.channel_state = true;
  c.wire_id_modulus = modulus;
  c.hardware_faithful = hardware;
  c.value_slots = 64;
  return c;
}

SnapshotConfig nocs_config(std::uint32_t modulus = 0, bool hardware = true) {
  SnapshotConfig c = cs_config(modulus, hardware);
  c.channel_state = false;
  return c;
}

TEST(Dataplane, AdvanceSavesStateBeforeCounting) {
  Harness h(cs_config());
  h.state = 42;
  const WireSid out = h.packet(1);
  EXPECT_EQ(out, 1u);
  const SlotValue& slot = h.unit.read_slot(1);
  EXPECT_TRUE(slot.initialized);
  // The advancing packet itself is post-snapshot: the slot holds the value
  // *before* any update the caller performs afterwards.
  EXPECT_EQ(slot.local_value, 42u);
  EXPECT_EQ(slot.channel_value, 0u);
  EXPECT_EQ(h.unit.virtual_sid(), 1u);
}

TEST(Dataplane, SameEpochPacketIsNoOp) {
  Harness h(cs_config());
  h.packet(1);
  const auto before = h.notifications.size();
  const WireSid out = h.packet(1);
  EXPECT_EQ(out, 1u);
  EXPECT_EQ(h.unit.virtual_sid(), 1u);
  EXPECT_EQ(h.notifications.size(), before);  // No change -> no notification.
}

TEST(Dataplane, StampsDepartingPacketsWithLocalSid) {
  Harness h(nocs_config());
  h.packet(3);
  // An in-flight packet (older sid) departs re-stamped with the local sid.
  EXPECT_EQ(h.packet(1), 3u);
}

TEST(Dataplane, MarkerlessPacketsOnlyStamp) {
  Harness h(cs_config());
  h.packet(2);
  PacketView v;
  v.has_marker = false;
  const WireSid out = h.unit.on_packet(v, 0, 0);
  EXPECT_EQ(out, 2u);
  EXPECT_EQ(h.unit.virtual_sid(), 2u);
  EXPECT_EQ(h.unit.virtual_last_seen(0), 2u);  // Untouched by markerless.
}

TEST(Dataplane, InFlightBookedIntoCurrentSlot) {
  // The unit advances via the CPU (initiation); packets from the old epoch
  // then arrive on the data channel and count as channel state. (On a FIFO
  // channel an in-flight packet can never follow a newer-id packet, so the
  // advance must come from a *different* channel.)
  Harness h(cs_config());
  h.state = 10;
  h.unit.on_initiation(1, 0);
  h.state = 15;
  h.packet(0, /*channel=*/0);     // in-flight from epoch 0
  h.packet(0, /*channel=*/0);     // another
  const SlotValue& slot = h.unit.read_slot(1);
  EXPECT_EQ(slot.local_value, 10u);
  EXPECT_EQ(slot.channel_value, 2u);
}

TEST(Dataplane, ControlMessagesNeverInFlight) {
  Harness h(cs_config());
  h.unit.on_initiation(2, 0);
  const auto before = h.unit.read_slot(2).channel_value;
  h.packet(1, 0, /*counts=*/false);  // e.g. a probe from an old epoch
  EXPECT_EQ(h.unit.read_slot(2).channel_value, before);
}

TEST(Dataplane, LastSeenTracksPerChannel) {
  Harness h(cs_config(0), /*channels=*/3, /*cpu=*/2);
  h.packet(4, 0);
  h.packet(2, 1);
  EXPECT_EQ(h.unit.virtual_last_seen(0), 4u);
  EXPECT_EQ(h.unit.virtual_last_seen(1), 2u);
  EXPECT_EQ(h.unit.virtual_sid(), 4u);
}

TEST(Dataplane, NotificationCarriesAllFourValues) {
  Harness h(cs_config());
  h.packet(1, 0);
  ASSERT_EQ(h.notifications.size(), 1u);
  const Notification& n = h.notifications[0];
  EXPECT_EQ(n.unit, kUnit);
  EXPECT_EQ(n.old_sid, 0u);
  EXPECT_EQ(n.new_sid, 1u);
  EXPECT_EQ(n.channel, 0);
  EXPECT_EQ(n.old_last_seen, 0u);
  EXPECT_EQ(n.new_last_seen, 1u);
  EXPECT_TRUE(n.sid_changed());
  EXPECT_TRUE(n.last_seen_changed());
}

TEST(Dataplane, NotificationOnLastSeenOnlyProgress) {
  Harness h(cs_config(0), 3, 2);
  h.packet(2, 0);  // sid -> 2
  h.notifications.clear();
  h.packet(1, 1);  // in-flight, but lastSeen[1] 0 -> 1
  ASSERT_EQ(h.notifications.size(), 1u);
  EXPECT_FALSE(h.notifications[0].sid_changed());
  EXPECT_TRUE(h.notifications[0].last_seen_changed());
  EXPECT_EQ(h.notifications[0].channel, 1);
}

TEST(Dataplane, NoCsEmitsNoLastSeen) {
  Harness h(nocs_config());
  h.packet(1);
  ASSERT_EQ(h.notifications.size(), 1u);
  EXPECT_EQ(h.notifications[0].channel, kNoChannel);
  EXPECT_FALSE(h.notifications[0].last_seen_changed());
}

TEST(Dataplane, HardwareJumpSkipsIntermediateSlots) {
  Harness h(cs_config());
  h.state = 7;
  h.packet(5, 0);
  EXPECT_TRUE(h.unit.read_slot(5).initialized);
  for (VirtualSid i = 1; i <= 4; ++i) {
    EXPECT_FALSE(h.unit.read_slot(i).initialized) << i;
  }
}

TEST(Dataplane, IdealJumpFillsIntermediateSlots) {
  Harness h(cs_config(0, /*hardware=*/false));
  h.state = 7;
  h.packet(5, 0);
  for (VirtualSid i = 1; i <= 5; ++i) {
    EXPECT_TRUE(h.unit.read_slot(i).initialized) << i;
    EXPECT_EQ(h.unit.read_slot(i).local_value, 7u);
  }
}

TEST(Dataplane, IdealInFlightUpdatesAllCoveredSlots) {
  Harness h(cs_config(0, /*hardware=*/false));
  h.unit.on_initiation(3, 0);  // Advance via CPU so channel 0 stays behind.
  h.packet(0, 0);              // In-flight for snapshots 1..3.
  for (VirtualSid i = 1; i <= 3; ++i) {
    EXPECT_EQ(h.unit.read_slot(i).channel_value, 1u) << i;
  }
}

TEST(Dataplane, InitiationAdvancesViaCpuChannel) {
  Harness h(cs_config());
  h.state = 99;
  const WireSid out = h.unit.on_initiation(1, 5);
  EXPECT_EQ(out, 1u);
  EXPECT_EQ(h.unit.virtual_sid(), 1u);
  EXPECT_EQ(h.unit.virtual_last_seen(1), 1u);  // CPU channel.
  EXPECT_EQ(h.unit.virtual_last_seen(0), 0u);  // Data channel untouched.
  EXPECT_EQ(h.unit.read_slot(1).local_value, 99u);
  EXPECT_EQ(h.unit.read_slot(1).saved_at, 5);
}

TEST(Dataplane, DuplicateInitiationIgnored) {
  Harness h(cs_config());
  h.unit.on_initiation(1, 0);
  const auto notifications = h.notifications.size();
  h.state = 123;
  h.unit.on_initiation(1, 0);  // Duplicate.
  EXPECT_EQ(h.unit.read_slot(1).local_value, 0u);  // Not overwritten.
  EXPECT_EQ(h.notifications.size(), notifications);
}

TEST(Dataplane, StaleInitiationIgnored) {
  Harness h(cs_config());
  h.unit.on_initiation(1, 0);
  h.unit.on_initiation(2, 0);
  h.state = 55;
  h.unit.on_initiation(1, 0);  // Out of date; must not regress.
  EXPECT_EQ(h.unit.virtual_sid(), 2u);
}

TEST(Dataplane, WraparoundLongRunMonotone) {
  Harness h(cs_config(/*modulus=*/4));
  // Drive 20 snapshots through a 2-bit wire id space, one at a time.
  for (VirtualSid i = 1; i <= 20; ++i) {
    h.state = i * 100;
    h.unit.on_initiation(static_cast<WireSid>(i % 4), 0);
    EXPECT_EQ(h.unit.virtual_sid(), i);
  }
}

TEST(Dataplane, WraparoundSlotTagsDetectStaleness) {
  Harness h(cs_config(/*modulus=*/4));
  h.unit.on_initiation(1, 0);
  h.unit.on_initiation(2, 0);
  // Slot 1 holds snapshot 1 (wire 1). After rolling to virtual 5 (wire 1),
  // the slot is overwritten and tagged with the same wire id, so only the
  // no-lap discipline distinguishes them: verify tags are stored at all.
  EXPECT_EQ(h.unit.read_slot(1).wire_sid, 1u);
  EXPECT_EQ(h.unit.read_slot(2).wire_sid, 2u);
}

TEST(Dataplane, NoCsSerialArithmeticHandlesBehindPackets) {
  Harness h(nocs_config(/*modulus=*/16));
  for (WireSid i = 1; i <= 9; ++i) h.unit.on_initiation(i, 0);
  EXPECT_EQ(h.unit.virtual_sid(), 9u);
  // A packet from epoch 7 (behind by 2, wire 7): no action, stamped 9.
  EXPECT_EQ(h.packet(7), 9u % 16);
  EXPECT_EQ(h.unit.virtual_sid(), 9u);
}

TEST(Dataplane, HardwareMatchesIdealWithoutSkips) {
  // Two executions of the same +1-at-a-time script must agree exactly.
  Harness hw(cs_config(0, true));
  Harness ideal(cs_config(0, false));
  const struct {
    WireSid sid;
    std::uint16_t ch;
  } script[] = {{1, 0}, {1, 0}, {0, 0}, {1, 0}, {2, 0}, {1, 0}, {2, 0}, {3, 0}};
  std::uint64_t state = 0;
  for (const auto& step : script) {
    ++state;
    hw.state = ideal.state = state;
    hw.packet(step.sid, step.ch);
    ideal.packet(step.sid, step.ch);
  }
  EXPECT_EQ(hw.unit.virtual_sid(), ideal.unit.virtual_sid());
  for (VirtualSid i = 1; i <= 3; ++i) {
    EXPECT_EQ(hw.unit.read_slot(i).local_value,
              ideal.unit.read_slot(i).local_value)
        << i;
    EXPECT_EQ(hw.unit.read_slot(i).channel_value,
              ideal.unit.read_slot(i).channel_value)
        << i;
  }
}

TEST(IdealUnit, Figure3Semantics) {
  std::uint64_t state = 0;
  IdealUnit u(2, /*channel_state=*/true, [&]() { return state; });
  state = 5;
  EXPECT_EQ(u.on_receive(1, 0, 1), 1u);
  EXPECT_EQ(u.snaps().at(1).local_value, 5u);
  state = 9;
  EXPECT_EQ(u.on_receive(0, 1, 1), 1u);  // In-flight from channel 1.
  EXPECT_EQ(u.snaps().at(1).channel_value, 1u);
  // Complete through min(lastSeen) = 0 until channel 1 catches up.
  EXPECT_EQ(u.complete_through(), 0u);
  u.on_receive(1, 1, 1);
  EXPECT_EQ(u.complete_through(), 1u);
}

TEST(IdealUnit, JumpFillsAllSnapshots) {
  std::uint64_t state = 77;
  IdealUnit u(1, true, [&]() { return state; });
  u.on_receive(4, 0, 1);
  for (VirtualSid i = 1; i <= 4; ++i) {
    EXPECT_EQ(u.snaps().at(i).local_value, 77u);
  }
}

TEST(IdealUnit, NoChannelStateCompleteOnAdvance) {
  std::uint64_t state = 0;
  IdealUnit u(1, false, [&]() { return state; });
  u.initiate(3);
  EXPECT_EQ(u.complete_through(), 3u);
}

}  // namespace
}  // namespace speedlight::snap
