// Wire format v2 (DESIGN.md section 16): varint/zigzag primitives,
// truncated-timestamp epoch recovery, and the notification/report codecs.
// The codecs must be exactly lossless — the fuzzer's twin-run oracle
// compares delta-encoded runs byte-for-byte against full-encoding runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/snapshot_wire.hpp"
#include "snapshot/wire.hpp"

namespace speedlight::snap {
namespace {

/// Deterministic 64-bit generator (splitmix64) for property sweeps.
class Mix {
 public:
  explicit Mix(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// --- Primitives --------------------------------------------------------------

TEST(WirePrimitives, VarintRoundTrip) {
  std::vector<std::uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                       0xFFFFFFFFull, ~0ull};
  Mix mix(7);
  for (int i = 0; i < 200; ++i) {
    values.push_back(mix.next() >> (mix.next() % 64));
  }
  for (const std::uint64_t v : values) {
    std::uint8_t buf[10];
    const std::size_t n = net::put_varint(v, buf);
    EXPECT_EQ(n, net::varint_len(v));
    std::uint64_t back = 0;
    EXPECT_EQ(net::get_varint({buf, n}, &back), n);
    EXPECT_EQ(back, v);
    // Truncated buffers must be rejected, not misread.
    if (n > 1) {
      EXPECT_EQ(net::get_varint({buf, n - 1}, &back), 0u);
    }
  }
}

TEST(WirePrimitives, ZigzagRoundTrip) {
  Mix mix(11);
  std::vector<std::int64_t> values = {0, 1, -1, 2, -2, INT64_MAX, INT64_MIN};
  for (int i = 0; i < 200; ++i) {
    values.push_back(static_cast<std::int64_t>(mix.next()));
  }
  for (const std::int64_t v : values) {
    EXPECT_EQ(net::zigzag_decode(net::zigzag_encode(v)), v);
  }
  // Small magnitudes map to small codes (what makes deltas cheap).
  EXPECT_LE(net::zigzag_encode(-3), 6u);
  EXPECT_LE(net::varint_len(net::zigzag_encode(-3)), 1u);
}

TEST(WirePrimitives, TruncatedTimestampRecoveryAcrossWraparound) {
  // recover_truncated is exact whenever |true - ref| < 2^(bits-1),
  // including when the truncated window straddles an epoch boundary.
  for (const unsigned bits : {16u, 24u}) {
    const std::int64_t half = std::int64_t{1} << (bits - 1);
    const std::uint64_t mod = std::uint64_t{1} << bits;
    Mix mix(bits);
    for (int i = 0; i < 2000; ++i) {
      // Reference times clustered around epoch rollovers and random.
      std::int64_t ref;
      switch (i % 3) {
        case 0:
          ref = static_cast<std::int64_t>((i / 3 + 1) * mod) +
                static_cast<std::int64_t>(mix.next() % 64) - 32;
          break;
        case 1:
          ref = static_cast<std::int64_t>(mix.next() % (mod * 1024));
          break;
        default:
          ref = static_cast<std::int64_t>(16777216) +  // 2^24 ns
                static_cast<std::int64_t>(mix.next() % 4096) - 2048;
          break;
      }
      if (ref < half) ref = half;
      const std::int64_t offset =
          static_cast<std::int64_t>(mix.next() % (2 * half - 1)) - (half - 1);
      const std::int64_t truth = ref + offset;
      const std::uint64_t low = static_cast<std::uint64_t>(truth) & (mod - 1);
      EXPECT_EQ(net::recover_truncated(ref, low, bits), truth)
          << "bits=" << bits << " ref=" << ref << " offset=" << offset;
    }
  }
}

TEST(WirePrimitives, RecoveryFailsBeyondHalfWindow) {
  // One past the half window aliases to the other side — the encoders'
  // ts_fits() guard exists precisely because of this.
  const std::int64_t half = std::int64_t{1} << 23;
  const std::int64_t ref = 100 * half;
  const std::int64_t truth = ref + half;  // exactly half: ambiguous
  const std::uint64_t low = static_cast<std::uint64_t>(truth) & ((1u << 24) - 1);
  EXPECT_NE(net::recover_truncated(ref, low, 24), truth);
}

// --- Service cost model ------------------------------------------------------

TEST(WireServiceCost, FullFrameCostsExactlyTheReference) {
  // Calibration invariant: a 29-byte FullV2 notification costs exactly the
  // v1 notification_service_time, so the full encoding reproduces v1 rates.
  EXPECT_EQ(wire_service_cost(110000, kFullNotificationBytes), 110000);
  EXPECT_EQ(wire_service_cost(42000, kFullNotificationBytes), 42000);
  // Smaller frames cost proportionally less, floored by the fixed fraction.
  const sim::Duration five = wire_service_cost(110000, 5);
  EXPECT_LT(five, 110000 / 4);
  EXPECT_GT(five, static_cast<sim::Duration>(110000 * kFixedServiceFraction) - 1);
  EXPECT_GE(wire_service_cost(1, 0), 1);  // Never free.
}

// --- Notification codec ------------------------------------------------------

Notification make_notification(Mix& mix, bool channel_state) {
  Notification n;
  n.unit.node = 3;
  n.unit.port = static_cast<net::PortId>(mix.next() % 64);
  n.unit.direction =
      (mix.next() & 1) != 0 ? net::Direction::Egress : net::Direction::Ingress;
  n.new_sid = static_cast<WireSid>(mix.next());
  n.old_sid = n.new_sid - static_cast<WireSid>(mix.next() % 5);
  if (channel_state) {
    n.channel = static_cast<std::uint16_t>(mix.next() % 64);
    n.new_last_seen = static_cast<WireSid>(mix.next());
    n.old_last_seen = n.new_last_seen - static_cast<WireSid>(mix.next() % 5);
  }
  n.timestamp = static_cast<sim::SimTime>(mix.next() % (1ull << 40));
  return n;
}

TEST(NotificationCodec, RoundTripBothEncodings) {
  for (const auto encoding : {WireEncoding::FullV2, WireEncoding::DeltaV2}) {
    for (const bool compact : {false, true}) {
      WireOptions opts;
      opts.encoding = encoding;
      opts.compact_timestamps = compact;
      const sim::Duration pcie = sim::usec(2);
      NotificationCodec codec(opts, pcie);
      Mix mix(99);
      for (int i = 0; i < 500; ++i) {
        const Notification n = make_notification(mix, (i & 1) != 0);
        std::uint8_t buf[kMaxNotificationFrameBytes];
        const std::size_t len = codec.encode(n, buf);
        ASSERT_LE(len, kMaxNotificationFrameBytes);
        if (encoding == WireEncoding::FullV2) {
          EXPECT_EQ(len, kFullNotificationBytes);
        }
        // Arrival = emission + PCIe transit, the recovery reference.
        const auto back = codec.decode({buf, len}, n.unit.node,
                                       n.timestamp + pcie);
        ASSERT_TRUE(back.has_value()) << "i=" << i;
        EXPECT_EQ(back->unit, n.unit);
        EXPECT_EQ(back->old_sid, n.old_sid);
        EXPECT_EQ(back->new_sid, n.new_sid);
        EXPECT_EQ(back->channel, n.channel);
        EXPECT_EQ(back->old_last_seen, n.old_last_seen);
        EXPECT_EQ(back->new_last_seen, n.new_last_seen);
        EXPECT_EQ(back->timestamp, n.timestamp) << "i=" << i;
      }
    }
  }
}

TEST(NotificationCodec, DeltaFramesAreSmall) {
  WireOptions opts;  // DeltaV2 + compact timestamps
  NotificationCodec codec(opts, sim::usec(2));
  Notification n;
  n.unit.port = 5;
  n.old_sid = 41;
  n.new_sid = 42;  // +1: fits the 2-bit advance code
  n.timestamp = sim::msec(3);
  std::uint8_t buf[kMaxNotificationFrameBytes];
  const std::size_t len = codec.encode(n, buf);
  // flags + port(1) + new_sid(1) + ts(2) = 5 bytes; >5x under the 29-byte
  // full frame (the Figure 10 rate win).
  EXPECT_EQ(len, 5u);
}

TEST(NotificationCodec, CompactTsFallsBackWhenTransitExceedsWindow) {
  WireOptions opts;
  // Transit beyond the 2^15 ns recovery guard: encoder must use 64-bit.
  NotificationCodec codec(opts, sim::usec(40));
  Notification n;
  n.unit.port = 1;
  n.old_sid = 1;
  n.new_sid = 2;
  n.timestamp = sim::sec(5);
  std::uint8_t buf[kMaxNotificationFrameBytes];
  const std::size_t len = codec.encode(n, buf);
  const auto back = codec.decode({buf, len}, 0, n.timestamp + sim::usec(40));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->timestamp, n.timestamp);
}

TEST(NotificationCodec, RejectsTruncatedFrames) {
  WireOptions opts;
  NotificationCodec codec(opts, sim::usec(2));
  Mix mix(5);
  const Notification n = make_notification(mix, true);
  std::uint8_t buf[kMaxNotificationFrameBytes];
  const std::size_t len = codec.encode(n, buf);
  for (std::size_t cut = 0; cut < len; ++cut) {
    EXPECT_FALSE(codec.decode({buf, cut}, 0, n.timestamp).has_value())
        << "cut=" << cut;
  }
}

// --- Report codec ------------------------------------------------------------

UnitReport make_report(Mix& mix, net::PortId port, VirtualSid sid,
                       std::uint64_t local, sim::SimTime ship) {
  UnitReport r;
  r.device = 3;
  r.unit.node = 3;
  r.unit.port = port;
  r.unit.direction =
      (port & 1) != 0 ? net::Direction::Egress : net::Direction::Ingress;
  r.sid = sid;
  r.consistent = (mix.next() % 4) != 0;
  r.inferred = (mix.next() % 8) == 0;
  r.local_value = local;
  r.channel_value = local / 2;
  r.finalize_time = ship - static_cast<sim::SimTime>(mix.next() % sim::usec(50));
  r.advance_time =
      r.finalize_time - static_cast<sim::SimTime>(mix.next() % sim::usec(20));
  return r;
}

void expect_report_eq(const UnitReport& a, const UnitReport& b, int tag) {
  EXPECT_EQ(a.device, b.device) << tag;
  EXPECT_EQ(a.unit, b.unit) << tag;
  EXPECT_EQ(a.sid, b.sid) << tag;
  EXPECT_EQ(a.consistent, b.consistent) << tag;
  EXPECT_EQ(a.inferred, b.inferred) << tag;
  EXPECT_EQ(a.local_value, b.local_value) << tag;
  EXPECT_EQ(a.channel_value, b.channel_value) << tag;
  EXPECT_EQ(a.advance_time, b.advance_time) << tag;
  EXPECT_EQ(a.finalize_time, b.finalize_time) << tag;
}

TEST(ReportCodec, ChainRoundTripWithKeyframes) {
  for (const auto encoding : {WireEncoding::FullV2, WireEncoding::DeltaV2}) {
    WireOptions opts;
    opts.encoding = encoding;
    const sim::Duration rpc = sim::usec(50);
    WireStats stats;
    ReportEncoder enc;
    enc.configure(opts, rpc, &stats);
    ReportDecoder dec;
    dec.configure(opts, /*device=*/3, &stats);
    for (net::PortId p = 0; p < 4; ++p) {
      enc.add_unit({3, p, net::Direction::Ingress});
      dec.add_unit({3, p, net::Direction::Ingress});
      enc.add_unit({3, p, net::Direction::Egress});
      dec.add_unit({3, p, net::Direction::Egress});
    }

    Mix mix(17);
    sim::SimTime ship = sim::msec(1);
    std::uint64_t local = 1000;
    for (int i = 0; i < 400; ++i) {
      ship += static_cast<sim::SimTime>(mix.next() % sim::usec(200));
      local += mix.next() % 97;
      const UnitReport r =
          make_report(mix, static_cast<net::PortId>(mix.next() % 4),
                      /*sid=*/1 + static_cast<VirtualSid>(i / 16), local, ship);
      std::uint8_t buf[kMaxReportFrameBytes];
      const std::size_t len = enc.encode(r, ship, buf);
      ASSERT_LE(len, kMaxReportFrameBytes);
      const auto back = dec.decode({buf, len}, ship + rpc);
      ASSERT_TRUE(back.has_value()) << "i=" << i;
      expect_report_eq(*back, r, i);
    }
    if (encoding == WireEncoding::DeltaV2) {
      // Periodic keyframes refresh the baselines, deltas carry the rest.
      EXPECT_GT(stats.keyframe_bytes, 0u);
      EXPECT_GT(stats.delta_bytes, 0u);
      EXPECT_EQ(stats.decode_failures, 0u);
      EXPECT_EQ(stats.stale_session_drops, 0u);
    }
  }
}

TEST(ReportCodec, CompactTimestampSurvivesEpochRollover) {
  // Finalize timestamps straddling a 2^24 ns epoch boundary recover
  // exactly against the RPC arrival reference.
  WireOptions opts;
  const sim::Duration rpc = sim::usec(50);
  ReportEncoder enc;
  enc.configure(opts, rpc, nullptr);
  ReportDecoder dec;
  dec.configure(opts, 3, nullptr);
  const net::UnitId unit{3, 0, net::Direction::Ingress};
  enc.add_unit(unit);
  dec.add_unit(unit);

  const sim::SimTime epoch = sim::SimTime{1} << 24;  // 16.777 ms
  Mix mix(23);
  for (int i = 0; i < 64; ++i) {
    UnitReport r;
    r.device = 3;
    r.unit = unit;
    r.sid = 1 + i;
    r.consistent = true;
    r.local_value = 5;
    // Ship times walking across the boundary; finalize slightly earlier.
    const sim::SimTime ship = epoch - sim::usec(300) + i * sim::usec(10);
    r.finalize_time = ship - static_cast<sim::SimTime>(mix.next() % sim::usec(40));
    r.advance_time = r.finalize_time - sim::usec(3);
    std::uint8_t buf[kMaxReportFrameBytes];
    const std::size_t len = enc.encode(r, ship, buf);
    const auto back = dec.decode({buf, len}, ship + rpc);
    ASSERT_TRUE(back.has_value()) << i;
    EXPECT_EQ(back->finalize_time, r.finalize_time) << i;
    EXPECT_EQ(back->advance_time, r.advance_time) << i;
  }
}

TEST(ReportCodec, StaleSessionFramesAreDroppedWithoutStateDamage) {
  WireOptions opts;
  WireStats stats;
  ReportEncoder enc;
  enc.configure(opts, sim::usec(50), &stats);
  ReportDecoder dec;
  dec.configure(opts, 3, &stats);
  const net::UnitId unit{3, 0, net::Direction::Ingress};
  enc.add_unit(unit);
  dec.add_unit(unit);

  Mix mix(31);
  const UnitReport r1 = make_report(mix, 0, 1, 100, sim::msec(1));
  std::uint8_t old_frame[kMaxReportFrameBytes];
  const std::size_t old_len = enc.encode(r1, sim::msec(1), old_frame);

  // Observer restarts: both sides adopt session 1; the session-0 frame is
  // still in flight.
  enc.begin_session(1);
  dec.begin_session(1);
  EXPECT_FALSE(dec.decode({old_frame, old_len}, sim::msec(2)).has_value());
  EXPECT_EQ(stats.stale_session_drops, 1u);
  EXPECT_EQ(stats.decode_failures, 0u);

  // The first post-restart report is a keyframe and decodes cleanly.
  const UnitReport r2 = make_report(mix, 0, 2, 200, sim::msec(3));
  std::uint8_t buf[kMaxReportFrameBytes];
  const std::size_t len = enc.encode(r2, sim::msec(3), buf);
  const auto back = dec.decode({buf, len}, sim::msec(3) + sim::usec(50));
  ASSERT_TRUE(back.has_value());
  expect_report_eq(*back, r2, 0);
}

TEST(ReportCodec, DeltaWithoutBaselineFailsClosed) {
  WireOptions opts;
  WireStats stats;
  ReportEncoder enc;
  enc.configure(opts, sim::usec(50), &stats);
  const net::UnitId unit{3, 0, net::Direction::Ingress};
  enc.add_unit(unit);

  Mix mix(37);
  // Warm the encoder past its keyframe so the next frame is a delta.
  std::uint8_t buf[kMaxReportFrameBytes];
  enc.encode(make_report(mix, 0, 1, 100, sim::msec(1)), sim::msec(1), buf);
  const UnitReport r = make_report(mix, 0, 2, 150, sim::msec(2));
  const std::size_t len = enc.encode(r, sim::msec(2), buf);

  // A fresh decoder (no baseline) must refuse the delta frame rather than
  // reconstruct garbage.
  ReportDecoder dec;
  dec.configure(opts, 3, &stats);
  dec.add_unit(unit);
  EXPECT_FALSE(dec.decode({buf, len}, sim::msec(2)).has_value());
  EXPECT_EQ(stats.decode_failures, 1u);
}

TEST(ReportCodec, EveryFrameFitsTheInlineBudget) {
  // Adversarial values: huge deltas, timestamps outside the compact
  // window, absolute advance fallbacks — nothing may exceed 45 bytes.
  WireOptions opts;
  ReportEncoder enc;
  enc.configure(opts, sim::usec(50), nullptr);
  const net::UnitId unit{3, 1023, net::Direction::Egress};
  enc.add_unit(unit);
  Mix mix(41);
  for (int i = 0; i < 300; ++i) {
    UnitReport r;
    r.device = 3;
    r.unit = unit;
    r.sid = mix.next();
    r.consistent = true;
    r.local_value = mix.next();
    r.channel_value = mix.next();
    r.finalize_time = static_cast<sim::SimTime>(mix.next() % (1ull << 62));
    r.advance_time = static_cast<sim::SimTime>(mix.next() % (1ull << 62));
    std::uint8_t buf[kMaxReportFrameBytes];
    const std::size_t len =
        enc.encode(r, static_cast<sim::SimTime>(mix.next() % (1ull << 62)), buf);
    EXPECT_LE(len, kMaxReportFrameBytes) << i;
    EXPECT_GT(len, 0u) << i;
  }
}

}  // namespace
}  // namespace speedlight::snap
