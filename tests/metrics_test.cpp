// Streaming-metrics contract (obs/streaming.hpp + the core::Network
// facade): past NetworkOptions::per_instance_metrics_limit the registry
// holds one fixed set of fabric-wide accumulators instead of per-switch
// series, so its cardinality is constant in fabric size — and the
// accumulated totals must equal the per-switch sums they replace.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "net/topology.hpp"
#include "obs/streaming.hpp"
#include "test_topologies.hpp"
#include "workload/basic.hpp"

namespace speedlight {
namespace {

using core::Network;
using core::NetworkOptions;

std::size_t registry_size(std::size_t switches, std::size_t limit) {
  NetworkOptions opt;
  opt.seed = 11;
  opt.per_instance_metrics_limit = limit;
  Network net(net::make_line(switches), opt);
  return net.simulator().metrics().size();
}

double fabric_sample(Network& net, const std::string& name) {
  for (const auto& s : net.simulator().metrics().collect()) {
    if (s.name == name) return s.value;
  }
  ADD_FAILURE() << "no registry sample named " << name;
  return -1;
}

TEST(StreamingMetrics, RegistryCardinalityConstantAcrossFabricSize) {
  // Streaming mode (limit 0): growing the fabric 10x must not add a single
  // registry entry — the whole point of the O(1)-memory accumulators.
  const std::size_t small = registry_size(4, 0);
  const std::size_t large = registry_size(40, 0);
  EXPECT_EQ(small, large);

  // The per-instance path (the small-fabric default) keeps its per-switch
  // series, so it does grow — that contrast is the gate.
  const std::size_t small_pi = registry_size(4, 64);
  const std::size_t large_pi = registry_size(40, 64);
  EXPECT_GT(large_pi, small_pi);
  EXPECT_GT(large_pi, large);
}

TEST(StreamingMetrics, RegistersExactlyOneReaderPerClass) {
  obs::MetricsRegistry reg;
  obs::StreamingMetrics sm;
  const std::size_t before = reg.size();
  sm.register_views(reg, "fabric");
  EXPECT_EQ(reg.size() - before, obs::stream_class_count());
}

TEST(StreamingMetrics, RefreshRunsOnRead) {
  obs::StreamingMetrics sm;
  int refreshes = 0;
  sm.set_refresh([&refreshes](obs::StreamingMetrics& m) {
    ++refreshes;
    m.clear();
    m.set(obs::StreamClass::QueueDrops, 17);
  });
  EXPECT_EQ(sm.refreshed_value(obs::StreamClass::QueueDrops), 17u);
  EXPECT_EQ(sm.refreshed_value(obs::StreamClass::QueueDrops), 17u);
  EXPECT_EQ(refreshes, 2);
}

TEST(StreamingMetrics, TotalsMatchPerSwitchSums) {
  // Force streaming mode on a small fabric, run traffic plus a snapshot,
  // and check the fabric-wide readers against the ground-truth per-switch
  // counters the facade re-sums.
  NetworkOptions opt;
  opt.seed = 77;
  opt.per_instance_metrics_limit = 0;
  Network net(check::make_topo(check::TopoKind::LeafSpine, 3, 2, 2), opt);

  std::vector<std::unique_ptr<wl::Generator>> gens;
  for (std::size_t h = 0; h < net.num_hosts(); ++h) {
    auto g = std::make_unique<wl::PoissonGenerator>(
        net.simulator(), net.host(h),
        std::vector<net::NodeId>{net.host_id((h + 1) % net.num_hosts())},
        50000, 1000, sim::Rng(77 + h));
    g->start(net.now());
    gens.push_back(std::move(g));
  }
  net.run_for(sim::msec(2));
  const auto* snap = net.take_snapshot();
  ASSERT_NE(snap, nullptr);

  std::uint64_t captures = 0;
  std::uint64_t notifications = 0;
  std::uint64_t queue_drops = 0;
  for (std::size_t s = 0; s < net.num_switches(); ++s) {
    captures += net.switch_at(s).snapshot_captures();
    notifications += net.switch_at(s).snapshot_notifications();
    queue_drops += net.switch_at(s).queue_drops();
  }
  EXPECT_GT(captures, 0u);
  EXPECT_EQ(fabric_sample(net, "fabric.snap.captures"),
            static_cast<double>(captures));
  EXPECT_EQ(fabric_sample(net, "fabric.snap.notifications"),
            static_cast<double>(notifications));
  EXPECT_EQ(fabric_sample(net, "fabric.queue_drops"),
            static_cast<double>(queue_drops));
}

}  // namespace
}  // namespace speedlight
