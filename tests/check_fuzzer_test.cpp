// The fuzzer engine: fixed-seed scenarios satisfy every invariant, an
// intentionally broken checker (the channel-state term removed from the
// conservation equation) is caught and shrunk to a minimal reproducer, and
// lossy-link scenarios stay clean via the audited-drop slack.
#include <gtest/gtest.h>

#include "check/fuzzer.hpp"

namespace speedlight {
namespace {

TEST(Fuzzer, FixedSeedsRunClean) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto s = check::generate_scenario(seed);
    const auto r = check::run_scenario(s, {.with_oracle = true});
    EXPECT_TRUE(r.violations.empty())
        << "seed " << seed << " (" << s.label() << "): "
        << r.violations.front().invariant << ": "
        << r.violations.front().detail;
    EXPECT_GT(r.completed, 0u) << "seed " << seed;
  }
}

TEST(Fuzzer, RunsAreDeterministic) {
  const auto s = check::generate_scenario(6);
  const auto a = check::run_scenario(s, {.with_oracle = false});
  const auto b = check::run_scenario(s, {.with_oracle = false});
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.link_drops, b.link_drops);
  EXPECT_EQ(a.flaps, b.flaps);
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

TEST(Fuzzer, ConservationIsActuallyExercised) {
  // A checker that never evaluates its equation would pass everything;
  // assert real coverage on a channel-state scenario.
  const auto s = check::generate_scenario(1);
  ASSERT_TRUE(s.channel_state);
  const auto r = check::run_scenario(s, {.with_oracle = false});
  EXPECT_GT(r.conservation_checked, 0u);
}

TEST(Fuzzer, LossyLinkScenarioStaysCleanViaDropSlack) {
  // Seed 4 flaps a fat-tree trunk: wire drops of counted-pre packets widen
  // the conservation equation; the audited per-link drop count must absorb
  // exactly that.
  const auto s = check::generate_scenario(4);
  ASSERT_FALSE(s.faults.empty());
  const auto r = check::run_scenario(s, {.with_oracle = true});
  EXPECT_TRUE(r.violations.empty()) << r.violations.front().detail;
  EXPECT_GT(r.flaps, 0u);
}

TEST(Fuzzer, InjectedBugIsCaughtAndShrunk) {
  // Self-test of the whole find-shrink-replay loop: with the channel-state
  // term removed from the conservation equation, some scenario must fail,
  // and the shrinker must reduce it to <= 4 switches while it still fails.
  const check::RunOptions opts{.with_oracle = false,
                               .break_conservation = true};
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto s = check::generate_scenario(seed);
    const auto r = check::run_scenario(s, opts);
    if (!r.failed()) continue;

    const auto shrunk = check::shrink_scenario(s, opts);
    EXPECT_TRUE(shrunk.result.failed());
    EXPECT_LE(shrunk.scenario.topology().switches.size(), 4u);
    EXPECT_GT(shrunk.steps, 0u);
    // The reproducer survives serialization: the replayed file is the same
    // simulation, so it fails identically.
    const auto replayed = check::scenario_from_string(
        check::scenario_to_string(shrunk.scenario));
    EXPECT_TRUE(check::run_scenario(replayed, opts).failed());
    return;
  }
  FAIL() << "injected conservation bug was never caught in 30 seeds";
}

TEST(Fuzzer, StatsAccountRuns) {
  check::FuzzStats stats;
  const auto s = check::generate_scenario(2);
  const auto r = check::run_scenario(s, {.with_oracle = false});
  stats.account(r);
  EXPECT_EQ(stats.runs, 1u);
  EXPECT_EQ(stats.snapshots_checked, r.completed);

  obs::MetricsRegistry reg;
  stats.register_metrics(reg);
  EXPECT_TRUE(reg.contains("fuzz.runs"));
  EXPECT_TRUE(reg.contains("fuzz.failures"));
}

}  // namespace
}  // namespace speedlight
