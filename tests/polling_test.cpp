// The counter-polling baseline: sweep mechanics and its intrinsic
// asynchronicity (the property Figures 9/12/13 compare against).
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "net/topology.hpp"
#include "workload/basic.hpp"

namespace speedlight {
namespace {

using core::Network;
using core::NetworkOptions;

TEST(Polling, SweepVisitsAllUnitsInOrder) {
  Network net(net::make_star(2), NetworkOptions{});
  net.register_all_units_for_polling();
  EXPECT_EQ(net.poller().num_units(), 4u);
  std::vector<poll::PollSweep> sweeps;
  net.poller().sweep_at(net.now() + sim::msec(1),
                        [&](poll::PollSweep s) { sweeps.push_back(std::move(s)); });
  net.run_for(sim::msec(20));
  ASSERT_EQ(sweeps.size(), 1u);
  ASSERT_EQ(sweeps[0].samples.size(), 4u);
  // Strictly increasing read times (sequential polls).
  for (std::size_t i = 1; i < sweeps[0].samples.size(); ++i) {
    EXPECT_GT(sweeps[0].samples[i].time, sweeps[0].samples[i - 1].time);
  }
}

TEST(Polling, SweepSpanScalesWithUnitCount) {
  Network small(net::make_star(2), NetworkOptions{});
  small.register_all_units_for_polling();
  Network large(net::make_leaf_spine(2, 2, 3), NetworkOptions{});
  large.register_all_units_for_polling();

  auto span_of = [](Network& net) {
    const auto sweeps = core::run_polling_campaign(net, 1, sim::msec(1));
    return sweeps.empty() ? sim::Duration{0} : sweeps[0].span();
  };
  const auto s_small = span_of(small);
  const auto s_large = span_of(large);
  EXPECT_GT(s_large, s_small * 3);
}

TEST(Polling, TestbedScaleSweepSpansMilliseconds) {
  // The paper: a full sequence of network-wide polls has a median
  // first-to-last spread of ~2.6ms on the 4-switch testbed.
  Network net(net::make_leaf_spine(2, 2, 3), NetworkOptions{});
  net.register_all_units_for_polling();
  const auto sweeps = core::run_polling_campaign(net, 20, sim::msec(10));
  ASSERT_EQ(sweeps.size(), 20u);
  std::vector<double> spans;
  for (const auto& s : sweeps) spans.push_back(static_cast<double>(s.span()));
  std::sort(spans.begin(), spans.end());
  const double median_ms = spans[spans.size() / 2] / sim::kMillisecond;
  EXPECT_GT(median_ms, 1.5);
  EXPECT_LT(median_ms, 4.5);
}

TEST(Polling, ValuesReflectLiveCounters) {
  Network net(net::make_star(2), NetworkOptions{});
  net.register_all_units_for_polling();
  for (int i = 0; i < 9; ++i) net.host(0).send(net.host_id(1), 1, 100);
  net.run_for(sim::msec(1));
  const auto sweeps = core::run_polling_campaign(net, 1, sim::msec(1));
  ASSERT_EQ(sweeps.size(), 1u);
  std::uint64_t total = 0;
  for (const auto& s : sweeps[0].samples) total += s.value;
  EXPECT_EQ(total, 18u);  // 9 at ingress 0, 9 at egress 1.
}

TEST(Polling, ExtractValuesFindsUnits) {
  Network net(net::make_star(2), NetworkOptions{});
  net.register_all_units_for_polling();
  const auto sweeps = core::run_polling_campaign(net, 1, sim::msec(1));
  ASSERT_EQ(sweeps.size(), 1u);
  std::vector<double> out;
  EXPECT_TRUE(core::extract_values(
      sweeps[0], {{0, 0, net::Direction::Ingress}}, out));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_FALSE(core::extract_values(
      sweeps[0], {{9, 0, net::Direction::Ingress}}, out));
}

}  // namespace
}  // namespace speedlight
