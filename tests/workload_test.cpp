// Workload generators: each must reproduce the temporal structure the
// paper's evaluation depends on.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/network.hpp"
#include "net/topology.hpp"
#include "workload/apps.hpp"
#include "workload/basic.hpp"
#include "workload/flow.hpp"

namespace speedlight {
namespace {

using core::Network;
using core::NetworkOptions;

TEST(FlowDriver, DeliversExactBytes) {
  Network net(net::make_star(2), NetworkOptions{});
  wl::FlowSpec spec;
  spec.dst = net.host_id(1);
  spec.flow = 5;
  spec.bytes = 10 * 1500 + 700;  // 11 packets, last one short.
  spec.rate_bps = 10e9;
  bool done = false;
  wl::launch_flow(net.simulator(), net.host(0), spec, net.now(),
                  [&]() { done = true; });
  net.run_for(sim::msec(5));
  EXPECT_TRUE(done);
  EXPECT_EQ(net.host(1).packets_received(), 11u);
  EXPECT_EQ(net.host(1).bytes_received(), spec.bytes);
}

TEST(FlowDriver, PacesAtConfiguredRate) {
  Network net(net::make_star(2), NetworkOptions{});
  wl::FlowSpec spec;
  spec.dst = net.host_id(1);
  spec.bytes = 100 * 1500;
  spec.rate_bps = 1.2e9;  // 1500B @ 1.2G = 10us/pkt -> 1ms total.
  sim::SimTime done_at = 0;
  wl::launch_flow(net.simulator(), net.host(0), spec, net.now(),
                  [&]() { done_at = net.simulator().now(); });
  net.run_for(sim::msec(10));
  EXPECT_NEAR(static_cast<double>(done_at), 1e6, 5e4);  // ~1ms in ns.
}

TEST(FlowDriver, ZeroByteFlowCompletesImmediately) {
  Network net(net::make_star(2), NetworkOptions{});
  bool done = false;
  wl::launch_flow(net.simulator(), net.host(0), {}, net.now(),
                  [&]() { done = true; });
  net.run_for(sim::msec(1));
  EXPECT_TRUE(done);
  EXPECT_EQ(net.host(1).packets_received(), 0u);
}

TEST(Cbr, SteadyRate) {
  Network net(net::make_star(2), NetworkOptions{});
  wl::CbrGenerator gen(net.simulator(), net.host(0), net.host_id(1), 1,
                       1.2e9, 1500);  // 100k pps
  gen.start(net.now());
  net.run_for(sim::msec(10));
  gen.stop();
  EXPECT_NEAR(static_cast<double>(net.host(1).packets_received()), 1000.0,
              20.0);
}

TEST(Poisson, MeanRateRespected) {
  Network net(net::make_star(3), NetworkOptions{});
  wl::PoissonGenerator gen(net.simulator(), net.host(0),
                           {net.host_id(1), net.host_id(2)}, 50000, 800,
                           sim::Rng(5));
  gen.start(net.now());
  net.run_for(sim::msec(100));
  gen.stop();
  const double received = static_cast<double>(net.host(1).packets_received() +
                                              net.host(2).packets_received());
  EXPECT_NEAR(received, 5000.0, 400.0);
  // Both destinations get a share.
  EXPECT_GT(net.host(1).packets_received(), 1500u);
  EXPECT_GT(net.host(2).packets_received(), 1500u);
}

TEST(OnOff, AlternatesBurstsAndSilence) {
  Network net(net::make_star(2), NetworkOptions{});
  wl::OnOffGenerator::Options opts;
  opts.burst_rate_bps = 20e9;
  opts.burst_bytes_mean = 150000;
  opts.idle_mean = sim::msec(1);
  wl::OnOffGenerator gen(net.simulator(), net.host(0), net.host_id(1), opts,
                         sim::Rng(7));
  gen.start(net.now());

  // Record interarrival gaps at the receiver.
  std::vector<sim::SimTime> arrivals;
  net.host(1).set_receive_callback(
      [&](const net::Packet&, sim::SimTime t) { arrivals.push_back(t); });
  net.run_for(sim::msec(50));
  gen.stop();
  ASSERT_GT(arrivals.size(), 100u);
  std::size_t long_gaps = 0;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    if (arrivals[i] - arrivals[i - 1] > sim::usec(300)) ++long_gaps;
  }
  EXPECT_GT(long_gaps, 5u);  // Real silences exist.
}

TEST(Hadoop, MappersShuffleToAllReducers) {
  Network net(net::make_leaf_spine(2, 2, 3), NetworkOptions{});
  std::vector<net::Host*> mappers{&net.host(0), &net.host(1), &net.host(2)};
  std::vector<net::Host*> reducers{&net.host(3), &net.host(4), &net.host(5)};
  wl::HadoopGenerator::Options opts;
  opts.shuffle_bytes_per_reducer = 100000;
  opts.compute_mean = sim::msec(10);
  wl::HadoopGenerator gen(net.simulator(), mappers, reducers, opts,
                          sim::Rng(3));
  gen.start(net.now());
  net.run_for(sim::msec(100));
  gen.stop();
  for (std::size_t r = 3; r <= 5; ++r) {
    EXPECT_GT(net.host(r).bytes_received(), 100000u) << r;
  }
}

TEST(GraphX, SuperstepsAreSynchronizedBursts) {
  Network net(net::make_leaf_spine(2, 2, 3), NetworkOptions{});
  std::vector<net::Host*> workers;
  for (std::size_t h = 0; h < 4; ++h) workers.push_back(&net.host(h));
  wl::GraphXGenerator::Options opts;
  opts.superstep_interval = sim::msec(20);
  opts.bytes_per_pair_mean = 150000;
  wl::GraphXGenerator gen(net.simulator(), workers, opts, sim::Rng(3));
  gen.start(net.now());

  // Sample per-ms arrival counts at one worker: supersteps every 20ms must
  // make the arrival process strongly bimodal (bursts vs near-silence).
  std::vector<std::uint64_t> per_ms(100, 0);
  net.host(0).set_receive_callback([&](const net::Packet&, sim::SimTime t) {
    const auto bucket = static_cast<std::size_t>(t / sim::msec(1));
    if (bucket < per_ms.size()) ++per_ms[bucket];
  });
  net.run_for(sim::msec(100));
  gen.stop();
  std::size_t silent = 0;
  std::size_t busy = 0;
  for (const auto count : per_ms) {
    if (count == 0) ++silent;
    if (count > 50) ++busy;
  }
  EXPECT_GT(silent, 20u);
  EXPECT_GE(busy, 5u);  // One burst bucket per superstep (5 in 100ms).
  // Host 5 is not a worker: no traffic at all.
  EXPECT_EQ(net.host(5).packets_received(), 0u);
}

TEST(Memcache, RequestsFanOutAndServersRespond) {
  Network net(net::make_leaf_spine(2, 2, 3), NetworkOptions{});
  std::vector<net::Host*> clients{&net.host(0)};
  std::vector<net::Host*> servers;
  for (std::size_t h = 1; h < 6; ++h) servers.push_back(&net.host(h));
  wl::MemcacheGenerator::Options opts;
  opts.requests_per_second = 5000;
  opts.keys_per_multiget = 5;
  wl::MemcacheGenerator gen(net.simulator(), clients, servers, opts,
                            sim::Rng(3));
  gen.start(net.now());
  net.run_for(sim::msec(50));
  gen.stop();
  net.run_for(sim::msec(5));
  EXPECT_NEAR(static_cast<double>(gen.requests_issued()), 250.0, 60.0);
  // Every request hits all 5 servers; every server responds.
  EXPECT_NEAR(static_cast<double>(gen.responses_sent()),
              static_cast<double>(gen.requests_issued()) * 5.0,
              gen.requests_issued() * 0.2 + 30.0);
  // Responses (1200B) arrive back at the client.
  EXPECT_GT(net.host(0).packets_received(), 500u);
}

TEST(Memcache, SteadyMicrosecondScaleTraffic) {
  // The Fig.12c regime: memcache interarrivals are microsecond-scale and
  // much smoother than Hadoop/GraphX.
  Network net(net::make_leaf_spine(2, 2, 3), NetworkOptions{});
  std::vector<net::Host*> clients{&net.host(0), &net.host(3)};
  std::vector<net::Host*> servers;
  for (std::size_t h = 0; h < 6; ++h) servers.push_back(&net.host(h));
  wl::MemcacheGenerator::Options opts;
  opts.requests_per_second = 20000;
  wl::MemcacheGenerator gen(net.simulator(), clients, servers, opts,
                            sim::Rng(3));
  gen.start(net.now());
  net.run_for(sim::msec(50));
  gen.stop();
  // The uplink EWMA of interarrival sits in the microsecond range.
  const auto& c = net.switch_at(0).counters(3, net::Direction::Egress);
  EXPECT_GT(c.packets(), 100u);
  EXPECT_LT(c.ewma_interarrival_ns(), 1e6);  // < 1ms
}

}  // namespace
}  // namespace speedlight
