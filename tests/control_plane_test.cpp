// Control-plane logic (Figure 7) exercised against real data-plane units
// through fake handles: completion detection, inconsistency marking, value
// inference, re-initiation, and register-poll recovery.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/timing_model.hpp"
#include "snapshot/control_plane.hpp"
#include "snapshot/dataplane.hpp"
#include "snapshot/unit_handle.hpp"

namespace speedlight::snap {
namespace {

class FakeUnit final : public UnitHandle {
 public:
  FakeUnit(sim::Simulator& sim, net::UnitId id, const SnapshotConfig& config,
           std::uint16_t channels, std::uint16_t cpu)
      : sim_(sim),
        dp_(id, config, channels, cpu, [this]() { return state; },
            [](const PacketView&) { return std::uint64_t{1}; },
            [this](const Notification& n) {
              if (notify) notify(n);
            }) {}

  [[nodiscard]] net::UnitId unit_id() const override { return dp_.id(); }
  [[nodiscard]] bool is_ingress() const override { return true; }
  [[nodiscard]] std::uint16_t num_channels() const override {
    return dp_.num_channels();
  }
  [[nodiscard]] std::uint16_t cpu_channel() const override {
    return dp_.cpu_channel();
  }

  void inject_initiation(WireSid sid) override {
    ++initiations;
    if (drop_initiations > 0) {
      --drop_initiations;
      return;
    }
    sim_.after(sim::usec(2), [this, sid]() { dp_.on_initiation(sid, sim_.now()); });
  }

  void inject_probe() override { ++probes; }

  [[nodiscard]] SlotValue read_value_slot(std::size_t index) const override {
    return dp_.read_slot(index);
  }
  [[nodiscard]] WireSid read_sid_register() const override {
    return dp_.sid_register();
  }
  [[nodiscard]] WireSid read_last_seen_register(
      std::uint16_t channel) const override {
    return dp_.last_seen_register(channel);
  }
  [[nodiscard]] std::uint64_t read_live_counter() const override {
    return state;
  }

  WireSid packet(WireSid sid, std::uint16_t channel) {
    PacketView v;
    v.wire_sid = sid;
    return dp_.on_packet(v, channel, sim_.now());
  }

  sim::Simulator& sim_;
  std::uint64_t state = 0;
  int initiations = 0;
  int probes = 0;
  int drop_initiations = 0;
  std::function<void(const Notification&)> notify;
  DataplaneUnit dp_;
};

struct Fixture {
  explicit Fixture(SnapshotConfig config,
                   ControlPlane::Options extra = {}) {
    timing.reinitiation_timeout = sim::msec(1);
    ControlPlane::Options options = extra;
    options.snapshot = config;
    cp = std::make_unique<ControlPlane>(sim, 7, "sw7", timing, options,
                                        sim::Rng(11));
    cp->set_report_sink([this](const UnitReport& r) { reports.push_back(r); });
    // One unit: data channel 0, CPU channel 1.
    unit = std::make_unique<FakeUnit>(
        sim, net::UnitId{7, 0, net::Direction::Ingress}, config, 2, 1);
    unit->notify = [this](const Notification& n) { cp->on_notification(n); };
    cp->add_unit(unit.get(), {true, true});
  }

  const UnitReport* report_for(VirtualSid sid) const {
    for (const auto& r : reports) {
      if (r.sid == sid) return &r;
    }
    return nullptr;
  }

  sim::Simulator sim;
  sim::TimingModel timing;
  std::unique_ptr<ControlPlane> cp;
  std::unique_ptr<FakeUnit> unit;
  std::vector<UnitReport> reports;
};

SnapshotConfig cs_config() {
  SnapshotConfig c;
  c.channel_state = true;
  c.value_slots = 64;
  return c;
}

SnapshotConfig nocs_config() {
  SnapshotConfig c;
  c.value_slots = 64;
  return c;
}

TEST(ControlPlaneCs, CompletesWhenLastSeenCatchesUp) {
  Fixture f(cs_config());
  f.unit->state = 5;
  f.cp->schedule_snapshot(1, 0);
  f.sim.run_until(sim::usec(500));
  EXPECT_EQ(f.unit->dp_.virtual_sid(), 1u);
  EXPECT_TRUE(f.reports.empty()) << "not complete until the neighbor catches up";

  // The upstream neighbor advances: a packet stamped 1 arrives.
  f.unit->packet(1, 0);
  f.sim.run_until(sim::msec(800));
  const UnitReport* r = f.report_for(1);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->consistent);
  EXPECT_EQ(r->local_value, 5u);
  EXPECT_EQ(r->device, 7u);
}

TEST(ControlPlaneCs, InFlightPacketsInChannelValue) {
  Fixture f(cs_config());
  f.cp->schedule_snapshot(1, 0);
  f.sim.run_until(sim::usec(500));
  f.unit->packet(0, 0);  // In-flight.
  f.unit->packet(0, 0);  // In-flight.
  f.unit->packet(1, 0);  // Neighbor catches up.
  f.sim.run_until(sim::msec(800));
  const UnitReport* r = f.report_for(1);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->consistent);
  EXPECT_EQ(r->channel_value, 2u);
}

TEST(ControlPlaneCs, SkippedIdsMarkedInconsistent) {
  ControlPlane::Options opts;
  opts.auto_reinitiate = false;
  Fixture f(cs_config(), opts);
  // The unit jumps straight to 3 via a data packet (e.g. its initiations
  // were lost but a neighbor advanced).
  f.unit->state = 42;
  f.unit->packet(3, 0);
  f.sim.run_until(sim::msec(800));
  for (VirtualSid i = 1; i <= 2; ++i) {
    const UnitReport* r = f.report_for(i);
    ASSERT_NE(r, nullptr) << i;
    EXPECT_FALSE(r->consistent) << i;
  }
  const UnitReport* r3 = f.report_for(3);
  ASSERT_NE(r3, nullptr);
  EXPECT_TRUE(r3->consistent);
  EXPECT_EQ(r3->local_value, 42u);
}

TEST(ControlPlaneNoCs, CompleteOnAdvance) {
  Fixture f(nocs_config());
  f.unit->state = 9;
  f.cp->schedule_snapshot(1, 0);
  f.sim.run_until(sim::msec(800));
  const UnitReport* r = f.report_for(1);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->consistent);
  EXPECT_FALSE(r->inferred);
  EXPECT_EQ(r->local_value, 9u);
}

TEST(ControlPlaneNoCs, SkippedIdsInferred) {
  ControlPlane::Options opts;
  opts.auto_reinitiate = false;
  Fixture f(nocs_config(), opts);
  f.unit->state = 77;
  f.unit->packet(3, 0);  // Jump 0 -> 3.
  f.sim.run_until(sim::msec(800));
  for (VirtualSid i = 1; i <= 3; ++i) {
    const UnitReport* r = f.report_for(i);
    ASSERT_NE(r, nullptr) << i;
    EXPECT_TRUE(r->consistent) << i;
    EXPECT_EQ(r->local_value, 77u) << i;
    EXPECT_EQ(r->inferred, i != 3) << i;
  }
}

TEST(ControlPlane, ReinitiationRecoversLostInitiation) {
  Fixture f(cs_config());
  f.unit->drop_initiations = 1;  // First initiation never reaches the ASIC.
  f.cp->schedule_snapshot(1, 0);
  f.sim.run_until(sim::msec(10));
  EXPECT_GE(f.unit->initiations, 2);
  EXPECT_EQ(f.unit->dp_.virtual_sid(), 1u);
  EXPECT_GE(f.cp->reinitiation_rounds(), 1u);
}

TEST(ControlPlane, ReinitiationStopsAfterMaxAttempts) {
  ControlPlane::Options opts;
  opts.max_reinitiations = 3;
  Fixture f(cs_config(), opts);
  f.unit->drop_initiations = 1000;  // Permanently broken.
  f.cp->schedule_snapshot(1, 0);
  f.sim.run_until(sim::sec(1));
  EXPECT_LE(f.unit->initiations, 1 + 3);
}

TEST(ControlPlane, ProbesFloodOnReinitiationWhenEnabled) {
  ControlPlane::Options opts;
  opts.probe_on_reinitiate = true;
  Fixture f(cs_config(), opts);
  f.cp->schedule_snapshot(1, 0);
  // sid advances via initiation but lastSeen[0] stays behind -> incomplete
  // -> re-initiation rounds flood probes.
  f.sim.run_until(sim::msec(10));
  EXPECT_GE(f.unit->probes, 1);
}

TEST(ControlPlane, RegisterPollRecoversLostNotifications) {
  ControlPlane::Options opts;
  opts.proactive_register_poll = true;
  opts.register_poll_interval = sim::msec(1);
  opts.auto_reinitiate = false;
  Fixture f(nocs_config(), opts);
  f.cp->start_register_poll();
  // Cut the notification path entirely.
  f.unit->notify = nullptr;
  f.unit->state = 31;
  f.unit->packet(1, 0);
  f.sim.run_until(sim::msec(20));
  const UnitReport* r = f.report_for(1);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->consistent);
  EXPECT_EQ(r->local_value, 31u);
}

TEST(ControlPlane, RegisterPollRecoversChannelStateToo) {
  // With channel state, the poll must also reconstruct the Last Seen
  // registers, or completion would hang after a dropped notification.
  ControlPlane::Options opts;
  opts.proactive_register_poll = true;
  opts.register_poll_interval = sim::msec(1);
  opts.auto_reinitiate = false;
  Fixture f(cs_config(), opts);
  f.cp->start_register_poll();
  f.unit->notify = nullptr;  // Every notification lost.
  f.unit->state = 12;
  f.unit->dp_.on_initiation(1, f.sim.now());  // sid -> 1.
  f.unit->packet(0, 0);                       // In-flight booked.
  f.unit->packet(1, 0);                       // lastSeen[0] -> 1.
  f.sim.run_until(sim::msec(30));
  const UnitReport* r = f.report_for(1);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->consistent);
  EXPECT_EQ(r->local_value, 12u);
  EXPECT_EQ(r->channel_value, 1u);
}

TEST(ControlPlaneCs, SimultaneousSidAndLastSeenChange) {
  // One packet can advance the sid AND the lastSeen of its channel; the
  // single notification carries all four values and must complete the
  // snapshot in one step (this is why the paper needs all four).
  Fixture f(cs_config());
  f.unit->state = 8;
  f.unit->packet(1, 0);  // Neighbor-initiated: sid 0->1, lastSeen[0] 0->1.
  f.sim.run_until(sim::msec(5));
  const UnitReport* r = f.report_for(1);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->consistent);
  EXPECT_EQ(r->local_value, 8u);
}

TEST(ControlPlaneNoCs, InferenceAcrossWraparound) {
  // Skipped ids spanning a wire rollover still infer correctly.
  SnapshotConfig config = nocs_config();
  config.wire_id_modulus = 8;  // Serial window: ids within +/-3.
  ControlPlane::Options opts;
  opts.auto_reinitiate = false;
  Fixture f(config, opts);
  // Walk to virtual 7 (wire 7), then jump to virtual 9 (wire 1): virtual 8
  // (wire 0) is skipped across the rollover.
  for (WireSid i = 1; i <= 7; ++i) {
    f.unit->state = i * 10;
    f.unit->packet(i, 0);
  }
  f.sim.run_until(f.sim.now() + sim::msec(5));
  f.unit->state = 90;
  f.unit->packet(9 % 8, 0);  // wire 1 -> virtual 9.
  f.sim.run_until(f.sim.now() + sim::msec(5));
  const UnitReport* r8 = f.report_for(8);
  const UnitReport* r9 = f.report_for(9);
  ASSERT_NE(r8, nullptr);
  ASSERT_NE(r9, nullptr);
  EXPECT_TRUE(r8->inferred);
  EXPECT_FALSE(r9->inferred);
  // Virtual 8 was skipped: its value is inferred from slot 9, which holds
  // the state at the moment of the jump (90).
  EXPECT_EQ(r9->local_value, 90u);
  EXPECT_EQ(r8->local_value, 90u);
}

TEST(ControlPlane, DuplicateNotificationsIdempotent) {
  ControlPlane::Options opts;
  opts.auto_reinitiate = false;
  Fixture f(nocs_config(), opts);
  Notification n;
  n.unit = f.unit->unit_id();
  n.old_sid = 0;
  n.new_sid = 1;
  n.timestamp = 5;
  f.unit->state = 3;
  f.unit->packet(1, 0);  // Real advance (generates its own notification).
  f.cp->on_notification(n);  // Duplicate.
  f.cp->on_notification(n);  // Duplicate.
  f.sim.run_until(sim::msec(5));
  int count = 0;
  for (const auto& r : f.reports) count += r.sid == 1;
  EXPECT_EQ(count, 1);
}

TEST(ControlPlane, MaskedChannelDoesNotGateCompletion) {
  // A unit whose only data channel is masked out (e.g. host-facing
  // ingress) completes as soon as its id advances.
  SnapshotConfig config = cs_config();
  sim::Simulator sim;
  sim::TimingModel timing;
  ControlPlane::Options options;
  options.snapshot = config;
  ControlPlane cp(sim, 1, "sw", timing, options, sim::Rng(2));
  std::vector<UnitReport> reports;
  cp.set_report_sink([&](const UnitReport& r) { reports.push_back(r); });
  FakeUnit unit(sim, net::UnitId{1, 0, net::Direction::Ingress}, config, 2, 1);
  unit.notify = [&](const Notification& n) { cp.on_notification(n); };
  cp.add_unit(&unit, {false, false});  // External channel masked out.
  cp.schedule_snapshot(1, 0);
  sim.run_until(sim::msec(500));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].sid, 1u);
  EXPECT_TRUE(reports[0].consistent);
}

TEST(ControlPlane, WraparoundNotificationsUnrolled) {
  SnapshotConfig config = cs_config();
  config.wire_id_modulus = 4;
  ControlPlane::Options opts;
  opts.auto_reinitiate = false;
  Fixture f(config, opts);
  // Walk through 10 snapshots in a 2-bit wire space.
  for (VirtualSid i = 1; i <= 10; ++i) {
    f.unit->state = i;
    f.unit->dp_.on_initiation(static_cast<WireSid>(i % 4), f.sim.now());
    f.unit->packet(static_cast<WireSid>(i % 4), 0);
    f.sim.run_until(f.sim.now() + sim::msec(2));
  }
  f.sim.run_until(f.sim.now() + sim::msec(5));
  for (VirtualSid i = 1; i <= 10; ++i) {
    const UnitReport* r = f.report_for(i);
    ASSERT_NE(r, nullptr) << i;
    EXPECT_TRUE(r->consistent) << i;
    EXPECT_EQ(r->local_value, i) << i;
  }
}

}  // namespace
}  // namespace speedlight::snap
