// Links (FIFO, serialization, propagation, loss) and hosts.
#include <gtest/gtest.h>

#include <vector>

#include "net/host.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"

namespace speedlight::net {
namespace {

class SinkNode final : public Node {
 public:
  SinkNode(NodeId id) : Node(id, "sink") {}
  void receive(PooledPacket pkt, PortId port) override {
    received.push_back({*pkt, port});
  }
  [[nodiscard]] bool is_host() const override { return false; }
  std::vector<std::pair<Packet, PortId>> received;
};

Packet make_packet(std::uint32_t size) {
  Packet p;
  p.size_bytes = size;
  return p;
}

TEST(Link, SerializationPlusPropagation) {
  sim::Simulator sim;
  SinkNode sink(1);
  Link link(sim, /*bandwidth=*/1e9, /*propagation=*/sim::usec(1), sim::Rng(1));
  link.connect(&sink, 3);
  link.send(make_packet(1250));  // 1250B at 1Gbps = 10us serialization.
  sim.run_until(sim::sec(1));
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0].second, 3);
  EXPECT_EQ(sim.now(), sim::sec(1));
}

TEST(Link, ArrivalTimeExact) {
  sim::Simulator sim;
  SinkNode sink(1);
  Link link(sim, 1e9, sim::usec(1), sim::Rng(1));
  link.connect(&sink, 0);
  sim::SimTime arrival = -1;
  link.set_arrive_tap([&](const Packet&, sim::SimTime t) { arrival = t; });
  link.send(make_packet(1250));
  sim.run_until(sim::sec(1));
  EXPECT_EQ(arrival, sim::usec(11));  // 10us serialize + 1us propagate.
}

TEST(Link, BackToBackPacketsQueueOnSerialization) {
  sim::Simulator sim;
  SinkNode sink(1);
  Link link(sim, 1e9, 0, sim::Rng(1));
  link.connect(&sink, 0);
  std::vector<sim::SimTime> arrivals;
  link.set_arrive_tap([&](const Packet&, sim::SimTime t) { arrivals.push_back(t); });
  link.send(make_packet(1250));
  link.send(make_packet(1250));
  link.send(make_packet(1250));
  sim.run_until(sim::sec(1));
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], sim::usec(10));
  EXPECT_EQ(arrivals[1], sim::usec(20));
  EXPECT_EQ(arrivals[2], sim::usec(30));
}

TEST(Link, FifoDeliveryOrder) {
  sim::Simulator sim;
  SinkNode sink(1);
  Link link(sim, 100e9, sim::nsec(500), sim::Rng(1));
  link.connect(&sink, 0);
  for (std::uint64_t i = 0; i < 50; ++i) {
    Packet p = make_packet(100 + static_cast<std::uint32_t>(i));
    p.id = i;
    link.send(std::move(p));
  }
  sim.run_until(sim::sec(1));
  ASSERT_EQ(sink.received.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(sink.received[i].first.id, i);
  }
}

TEST(Link, ForcedDropsDeterministic) {
  sim::Simulator sim;
  SinkNode sink(1);
  Link link(sim, 1e9, 0, sim::Rng(1));
  link.connect(&sink, 0);
  link.drop_next(2);
  for (int i = 0; i < 5; ++i) link.send(make_packet(100));
  sim.run_until(sim::sec(1));
  EXPECT_EQ(sink.received.size(), 3u);
  EXPECT_EQ(link.packets_dropped(), 2u);
  EXPECT_EQ(link.packets_sent(), 3u);
}

TEST(Link, RandomLossRate) {
  sim::Simulator sim;
  SinkNode sink(1);
  Link link(sim, 100e9, 0, sim::Rng(7));
  link.connect(&sink, 0);
  link.set_loss_probability(0.2);
  for (int i = 0; i < 5000; ++i) link.send(make_packet(100));
  sim.run_until(sim::sec(10));
  EXPECT_NEAR(static_cast<double>(link.packets_dropped()), 1000.0, 120.0);
}

TEST(Link, DeliverSkipsSerialization) {
  sim::Simulator sim;
  SinkNode sink(1);
  Link link(sim, 1e9, sim::usec(3), sim::Rng(1));
  link.connect(&sink, 0);
  sim.at(sim::usec(10), [&]() { link.deliver(make_packet(1500), sim.now()); });
  sim.run_until(sim::sec(1));
  ASSERT_EQ(sink.received.size(), 1u);
  // Arrival = departed + propagation only.
  EXPECT_EQ(sink.received[0].first.size_bytes, 1500u);
}

TEST(Host, SendStampsIdentity) {
  sim::Simulator sim;
  SinkNode sink(9);
  Host host(sim, 5, "h5");
  Link link(sim, 25e9, sim::nsec(500), sim::Rng(1));
  link.connect(&sink, 2);
  host.attach_uplink(&link);
  host.send(9, 77, 1500);
  host.send(9, 77, 1500);
  sim.run_until(sim::sec(1));
  ASSERT_EQ(sink.received.size(), 2u);
  const Packet& p = sink.received[0].first;
  EXPECT_EQ(p.src_host, 5u);
  EXPECT_EQ(p.dst_host, 9u);
  EXPECT_EQ(p.flow, 77u);
  EXPECT_FALSE(p.snap.present);
  EXPECT_NE(sink.received[0].first.id, sink.received[1].first.id);
  EXPECT_EQ(host.packets_sent(), 2u);
}

TEST(Host, ReceiveCountsAndCallbacks) {
  sim::Simulator sim;
  Host host(sim, 5, "h5");
  int callbacks = 0;
  host.set_receive_callback([&](const Packet&, sim::SimTime) { ++callbacks; });
  Packet p = make_packet(1000);
  host.receive(std::move(p), 0);
  EXPECT_EQ(host.packets_received(), 1u);
  EXPECT_EQ(host.bytes_received(), 1000u);
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(host.header_leaks(), 0u);
}

TEST(Host, DetectsHeaderLeaks) {
  sim::Simulator sim;
  Host host(sim, 5, "h5");
  Packet p = make_packet(100);
  p.snap.present = true;
  host.receive(std::move(p), 0);
  EXPECT_EQ(host.header_leaks(), 1u);
}

TEST(Host, IgnoresProbes) {
  sim::Simulator sim;
  Host host(sim, 5, "h5");
  int callbacks = 0;
  host.set_receive_callback([&](const Packet&, sim::SimTime) { ++callbacks; });
  Packet p = make_packet(64);
  p.snap.present = true;
  p.snap.kind = PacketKind::Probe;
  host.receive(std::move(p), 0);
  EXPECT_EQ(callbacks, 0);
  EXPECT_EQ(host.packets_received(), 0u);
}

}  // namespace
}  // namespace speedlight::net
