// The Tofino resource model must reproduce every number the paper
// publishes (Table 1 at 64 ports; the 14-port configuration of §7.1).
#include <gtest/gtest.h>

#include <sstream>

#include <unordered_map>

#include "resources/pipeline_layout.hpp"
#include "resources/register_discipline.hpp"
#include "resources/tofino_model.hpp"

namespace speedlight::res {
namespace {

TEST(Table1, PacketCountColumn) {
  const ResourceUsage u = estimate(Variant::PacketCount, 64);
  EXPECT_EQ(u.stateless_alus, 17);
  EXPECT_EQ(u.stateful_alus, 9);
  EXPECT_EQ(u.logical_table_ids, 27);
  EXPECT_EQ(u.conditional_gateways, 15);
  EXPECT_EQ(u.physical_stages, 10);
  EXPECT_NEAR(u.sram_kb, 606.0, 0.5);
  EXPECT_NEAR(u.tcam_kb, 42.0, 0.5);
}

TEST(Table1, WrapAroundColumn) {
  const ResourceUsage u = estimate(Variant::WrapAround, 64);
  EXPECT_EQ(u.stateless_alus, 19);
  EXPECT_EQ(u.stateful_alus, 9);
  EXPECT_EQ(u.logical_table_ids, 35);
  EXPECT_EQ(u.conditional_gateways, 19);
  EXPECT_EQ(u.physical_stages, 10);
  EXPECT_NEAR(u.sram_kb, 671.0, 0.5);
  EXPECT_NEAR(u.tcam_kb, 59.0, 0.5);
}

TEST(Table1, ChannelStateColumn) {
  const ResourceUsage u = estimate(Variant::ChannelState, 64);
  EXPECT_EQ(u.stateless_alus, 24);
  EXPECT_EQ(u.stateful_alus, 11);
  EXPECT_EQ(u.logical_table_ids, 37);
  EXPECT_EQ(u.conditional_gateways, 19);
  EXPECT_EQ(u.physical_stages, 12);
  EXPECT_NEAR(u.sram_kb, 770.0, 0.5);
  EXPECT_NEAR(u.tcam_kb, 244.0, 0.5);
}

TEST(Table1, FourteenPortConfigMatchesSection71) {
  // "A configuration with wraparound and channel state for 14 port
  // snapshots ... requires 638 KB of SRAM and 90KB of TCAM."
  const ResourceUsage u = estimate(Variant::ChannelState, 14);
  EXPECT_NEAR(u.sram_kb, 638.0, 1.0);
  EXPECT_NEAR(u.tcam_kb, 90.0, 1.0);
}

TEST(Table1, MemoryMonotoneInPorts) {
  for (const auto v :
       {Variant::PacketCount, Variant::WrapAround, Variant::ChannelState}) {
    double prev_sram = 0.0;
    double prev_tcam = 0.0;
    for (int p = 1; p <= 64; ++p) {
      const ResourceUsage u = estimate(v, p);
      EXPECT_GT(u.sram_kb, prev_sram);
      EXPECT_GE(u.tcam_kb, prev_tcam);
      prev_sram = u.sram_kb;
      prev_tcam = u.tcam_kb;
    }
  }
}

TEST(Table1, FeatureCostOrdering) {
  // Each added feature costs more, in every dimension.
  const ResourceUsage pc = estimate(Variant::PacketCount, 64);
  const ResourceUsage wa = estimate(Variant::WrapAround, 64);
  const ResourceUsage cs = estimate(Variant::ChannelState, 64);
  EXPECT_LE(pc.stateless_alus, wa.stateless_alus);
  EXPECT_LE(wa.stateless_alus, cs.stateless_alus);
  EXPECT_LE(pc.logical_table_ids, wa.logical_table_ids);
  EXPECT_LE(wa.logical_table_ids, cs.logical_table_ids);
  EXPECT_LT(pc.sram_kb, wa.sram_kb);
  EXPECT_LT(wa.sram_kb, cs.sram_kb);
  EXPECT_LT(pc.tcam_kb, wa.tcam_kb);
  EXPECT_LT(wa.tcam_kb, cs.tcam_kb);
}

TEST(Table1, UnderQuarterUtilization) {
  // Section 7.1: "the prototype occupies less than 25% of any given type of
  // dedicated resource".
  for (const auto v :
       {Variant::PacketCount, Variant::WrapAround, Variant::ChannelState}) {
    EXPECT_LT(max_utilization_fraction(estimate(v, 64)), 0.25)
        << variant_name(v);
  }
}

TEST(RegisterDiscipline, PerPassRmwsFitStatefulAluBudget) {
  // Both pipeline passes (ingress + egress unit) must fit the variant's
  // Table 1 stateful-ALU budget; register_discipline.hpp static_asserts the
  // same, so this doubles as a readable restatement of the bound.
  for (const auto v :
       {Variant::PacketCount, Variant::WrapAround, Variant::ChannelState}) {
    EXPECT_LE(stateful_rmws_per_packet(v), stateful_alus(v)) << variant_name(v);
    EXPECT_EQ(stateful_alus(v), estimate(v, 64).stateful_alus)
        << variant_name(v);
  }
}

TEST(RegisterDiscipline, ChannelStateAddsExactlyLastSeen) {
  // The channel-state build adds one register class (Last Seen) per unit:
  // its per-pass RMW count is exactly one higher.
  EXPECT_EQ(stateful_rmws_per_unit_pass(Variant::ChannelState),
            stateful_rmws_per_unit_pass(Variant::PacketCount) + 1);
  EXPECT_EQ(stateful_rmws_per_unit_pass(Variant::WrapAround),
            stateful_rmws_per_unit_pass(Variant::PacketCount));
}

TEST(Table1, RejectsInvalidPortCounts) {
  EXPECT_THROW((void)estimate(Variant::PacketCount, 0), std::invalid_argument);
  EXPECT_THROW((void)estimate(Variant::PacketCount, 65),
               std::invalid_argument);
}

TEST(Table1, PrintsAllRows) {
  std::ostringstream os;
  print_table1(os, 64);
  const std::string out = os.str();
  EXPECT_NE(out.find("Stateful ALUs"), std::string::npos);
  EXPECT_NE(out.find("SRAM"), std::string::npos);
  EXPECT_NE(out.find("TCAM"), std::string::npos);
  EXPECT_NE(out.find("770"), std::string::npos);
  EXPECT_NE(out.find("606"), std::string::npos);
}

TEST(PipelineLayout, TotalsMatchTable1Constants) {
  for (const auto v :
       {Variant::PacketCount, Variant::WrapAround, Variant::ChannelState}) {
    const PipelineLayout layout = make_pipeline(v);
    const ResourceUsage from_layout = layout.totals();
    const ResourceUsage from_table = estimate(v, 64);
    EXPECT_EQ(from_layout.stateless_alus, from_table.stateless_alus)
        << variant_name(v);
    EXPECT_EQ(from_layout.stateful_alus, from_table.stateful_alus)
        << variant_name(v);
    EXPECT_EQ(from_layout.logical_table_ids, from_table.logical_table_ids)
        << variant_name(v);
    EXPECT_EQ(from_layout.conditional_gateways,
              from_table.conditional_gateways)
        << variant_name(v);
    EXPECT_EQ(from_layout.physical_stages, from_table.physical_stages)
        << variant_name(v);
  }
}

TEST(PipelineLayout, StagesRespectDependencies) {
  const PipelineLayout layout = make_pipeline(Variant::ChannelState);
  std::unordered_map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < layout.tables.size(); ++i) {
    index[layout.tables[i].name] = i;
  }
  for (std::size_t i = 0; i < layout.tables.size(); ++i) {
    for (const auto& dep : layout.tables[i].deps) {
      EXPECT_LT(layout.stages[index.at(dep)], layout.stages[i])
          << layout.tables[i].name << " vs " << dep;
    }
    if (layout.tables[i].min_stage >= 0) {
      EXPECT_GE(layout.stages[i], layout.tables[i].min_stage);
    }
  }
}

TEST(PipelineLayout, FitsOneTofinoPipe) {
  for (const auto v :
       {Variant::PacketCount, Variant::WrapAround, Variant::ChannelState}) {
    const PipelineLayout layout = make_pipeline(v);
    EXPECT_LE(layout.stages_used(Gress::Ingress), 12) << variant_name(v);
    EXPECT_LE(layout.stages_used(Gress::Egress), 12) << variant_name(v);
  }
}

TEST(PipelineLayout, CycleDetection) {
  PipelineLayout layout;
  layout.tables = {
      {"a", Gress::Ingress, 0, 0, 0, {"b"}, -1},
      {"b", Gress::Ingress, 0, 0, 0, {"a"}, -1},
  };
  EXPECT_THROW(layout.assign_stages(), std::invalid_argument);
}

TEST(PipelineLayout, UnknownDependencyRejected) {
  PipelineLayout layout;
  layout.tables = {{"a", Gress::Ingress, 0, 0, 0, {"ghost"}, -1}};
  EXPECT_THROW(layout.assign_stages(), std::invalid_argument);
}

}  // namespace
}  // namespace speedlight::res
