// Topology builders, validation, and ECMP route computation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "net/soa.hpp"
#include "net/topology.hpp"

namespace speedlight::net {
namespace {

TEST(Topology, LeafSpineShape) {
  const TopologySpec spec = make_leaf_spine(2, 2, 3);
  spec.validate();
  EXPECT_EQ(spec.switches.size(), 4u);
  EXPECT_EQ(spec.hosts.size(), 6u);
  EXPECT_EQ(spec.trunks.size(), 4u);
  EXPECT_EQ(spec.switches[0].num_ports, 5u);  // 3 hosts + 2 uplinks.
  EXPECT_EQ(spec.switches[2].num_ports, 2u);  // Spines: one port per leaf.
}

TEST(Topology, ValidateCatchesPortReuse) {
  TopologySpec spec = make_leaf_spine(2, 2, 3);
  spec.hosts.push_back({"dup", 0, 0});  // Port 0 already used.
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(Topology, ValidateCatchesOutOfRange) {
  TopologySpec spec = make_star(2);
  spec.hosts.push_back({"bad", 7, 0});
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  TopologySpec spec2 = make_star(2);
  spec2.trunks.push_back({0, 0, 0, 1, 1e9, 1});
  EXPECT_THROW(spec2.validate(), std::invalid_argument);  // Self loop.
}

TEST(Topology, EcmpRoutesLeafSpine) {
  const TopologySpec spec = make_leaf_spine(2, 2, 3);
  const EcmpRoutes routes = compute_ecmp_routes(spec);

  // Host 0 lives on leaf0 port 0.
  EXPECT_EQ(routes[0][0], (std::vector<PortId>{0}));
  // From leaf1 to host 0: both uplinks (ports 3 and 4).
  std::vector<PortId> up = routes[1][0];
  std::sort(up.begin(), up.end());
  EXPECT_EQ(up, (std::vector<PortId>{3, 4}));
  // From spine0 to host 0: the leaf0-facing port (0).
  EXPECT_EQ(routes[2][0], (std::vector<PortId>{0}));
  // From spine to a host on leaf1: port 1.
  EXPECT_EQ(routes[2][3], (std::vector<PortId>{1}));
}

TEST(Topology, EcmpRoutesLine) {
  const TopologySpec spec = make_line(4);
  const EcmpRoutes routes = compute_ecmp_routes(spec);
  // Host 1 is on the last switch; every switch forwards right (port 2).
  for (std::size_t s = 0; s + 1 < 4; ++s) {
    EXPECT_EQ(routes[s][1], (std::vector<PortId>{2})) << s;
  }
  // Host 0 is on switch 0; downstream switches forward left (port 1).
  for (std::size_t s = 1; s < 4; ++s) {
    EXPECT_EQ(routes[s][0], (std::vector<PortId>{1})) << s;
  }
}

TEST(Topology, EcmpRoutesRingUsesShortestDirection) {
  const TopologySpec spec = make_ring(4);
  const EcmpRoutes routes = compute_ecmp_routes(spec);
  // From switch 1 to host on switch 0: one hop counter-clockwise.
  ASSERT_EQ(routes[1][0].size(), 1u);
  // From switch 2 to host 0: both directions are 2 hops -> ECMP set of 2.
  EXPECT_EQ(routes[2][0].size(), 2u);
}

TEST(Topology, FatTreeShape) {
  const TopologySpec spec = make_fat_tree(4);
  spec.validate();
  // k=4: 16 hosts, 8 edge + 8 agg + 4 core switches, 32 trunks.
  EXPECT_EQ(spec.hosts.size(), 16u);
  EXPECT_EQ(spec.switches.size(), 20u);
  EXPECT_EQ(spec.trunks.size(), 32u);
}

TEST(Topology, FatTreeEcmpDiversity) {
  const TopologySpec spec = make_fat_tree(4);
  const EcmpRoutes routes = compute_ecmp_routes(spec);
  // Cross-pod traffic from an edge switch has 2 uplinks on the shortest
  // path (k/2 = 2).
  const std::size_t edge0 = 0;
  // Host 15 is in the last pod; host 0 is on edge0.
  EXPECT_EQ(routes[edge0][15].size(), 2u);
  // Every switch can reach every host.
  for (std::size_t s = 0; s < spec.switches.size(); ++s) {
    for (std::size_t h = 0; h < spec.hosts.size(); ++h) {
      EXPECT_FALSE(routes[s][h].empty()) << "s=" << s << " h=" << h;
    }
  }
}

TEST(Topology, FatTreeRejectsOddK) {
  EXPECT_THROW(make_fat_tree(3), std::invalid_argument);
  EXPECT_THROW(make_fat_tree(0), std::invalid_argument);
}

TEST(Topology, Figure1Asymmetric) {
  const TopologySpec spec = make_figure1();
  spec.validate();
  const EcmpRoutes routes = compute_ecmp_routes(spec);
  // From a (switch 0) to hy (host 3): direct link a->y only (1 hop).
  EXPECT_EQ(routes[0][3], (std::vector<PortId>{2}));
  // From b (switch 1) to hx (host 2): b->y->a->x is the only path... via
  // port 1 (b's only trunk).
  EXPECT_EQ(routes[1][2], (std::vector<PortId>{1}));
}

TEST(Topology, StarRoutesDirect) {
  const TopologySpec spec = make_star(4);
  const EcmpRoutes routes = compute_ecmp_routes(spec);
  for (std::size_t h = 0; h < 4; ++h) {
    EXPECT_EQ(routes[0][h], (std::vector<PortId>{static_cast<PortId>(h)}));
  }
}

TEST(Topology, RoutesNeverUseHostPortsForTransit) {
  const TopologySpec spec = make_leaf_spine(3, 2, 4);
  const EcmpRoutes routes = compute_ecmp_routes(spec);
  // Transit routes (switch != attachment) must only use trunk ports.
  std::set<std::pair<std::size_t, PortId>> host_ports;
  for (const auto& h : spec.hosts) {
    host_ports.insert({h.attached_switch, h.switch_port});
  }
  for (std::size_t s = 0; s < spec.switches.size(); ++s) {
    for (std::size_t h = 0; h < spec.hosts.size(); ++h) {
      if (spec.hosts[h].attached_switch == s) continue;
      for (const PortId p : routes[s][h]) {
        EXPECT_FALSE(host_ports.contains({s, p})) << "s=" << s << " h=" << h;
      }
    }
  }
}

TEST(CompactRoutes, MatchesEcmpRoutesEverywhere) {
  // The interned SoA route table must agree with the reference per-entity
  // computation for every (switch, host) pair — same ports, same order —
  // across every topology family (the pinned equivalence the RoutingTable
  // compact base relies on).
  const TopologySpec specs[] = {
      make_leaf_spine(3, 2, 4), make_fat_tree(4), make_ring(5),
      make_line(4),             make_star(3),
  };
  for (const TopologySpec& spec : specs) {
    SCOPED_TRACE(spec.switches.size());
    const EcmpRoutes ref = compute_ecmp_routes(spec);
    const CompactRoutes compact = compute_compact_routes(spec);
    for (std::size_t s = 0; s < spec.switches.size(); ++s) {
      std::uint64_t routable = 0;
      for (std::size_t h = 0; h < spec.hosts.size(); ++h) {
        const auto span = compact.lookup(s, h);
        const std::vector<PortId> got(span.begin(), span.end());
        EXPECT_EQ(got, ref[s][h]) << "s=" << s << " h=" << h;
        if (!ref[s][h].empty()) ++routable;
      }
      EXPECT_EQ(compact.routable_destinations(s), routable) << "s=" << s;
    }
  }
}

TEST(CompactRoutes, InternsSharedNextHopSets) {
  // In a leaf-spine every leaf shares one uplink set toward all remote
  // hosts: the pool must hold far fewer sets than (switches x hosts)
  // route entries — the memory win the SoA core exists for.
  const TopologySpec spec = make_leaf_spine(4, 3, 4);
  const CompactRoutes compact = compute_compact_routes(spec);
  EXPECT_LT(compact.num_sets(),
            spec.switches.size() * spec.hosts.size() / 4);
}

}  // namespace
}  // namespace speedlight::net
