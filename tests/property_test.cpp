// Property-based sweeps: the protocol invariants of DESIGN.md section 7,
// checked over a grid of topologies, load balancers, wire-id spaces, and
// seeds (parameterized gtest).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "net/topology.hpp"
#include "test_topologies.hpp"
#include "workload/basic.hpp"

namespace speedlight {
namespace {

using core::Network;
using core::NetworkOptions;

// Shared family factory (tests/test_topologies.hpp); the fuzzer's scenario
// generator draws from the same switch with randomized sizes.
using Topo = ::speedlight::testing::TopoKind;

net::TopologySpec make_topo(Topo t) {
  return ::speedlight::testing::make_test_topo(t);
}

std::string topo_name(Topo t) {
  return ::speedlight::testing::test_topo_name(t);
}

struct Params {
  Topo topo;
  sw::LoadBalancerKind lb;
  std::uint32_t modulus;  // 0 = unbounded
  std::uint64_t seed;
  snap::NotificationMode transport = snap::NotificationMode::RawSocket;
  sw::MetricKind metric = sw::MetricKind::PacketCount;
};

class SnapshotProperty : public ::testing::TestWithParam<Params> {};

std::vector<std::unique_ptr<wl::Generator>> start_traffic(Network& net,
                                                          std::uint64_t seed) {
  std::vector<std::unique_ptr<wl::Generator>> gens;
  std::vector<net::NodeId> all;
  for (std::size_t h = 0; h < net.num_hosts(); ++h) all.push_back(net.host_id(h));
  for (std::size_t h = 0; h < net.num_hosts(); ++h) {
    std::vector<net::NodeId> dsts;
    for (const auto id : all) {
      if (id != net.host_id(h)) dsts.push_back(id);
    }
    auto g = std::make_unique<wl::PoissonGenerator>(
        net.simulator(), net.host(h), dsts, 60000, 1200,
        sim::Rng(seed * 977 + h));
    g->start(net.now());
    gens.push_back(std::move(g));
  }
  return gens;
}

TEST_P(SnapshotProperty, ConservationCompletenessMonotonicity) {
  const Params p = GetParam();
  NetworkOptions opt;
  opt.seed = p.seed;
  opt.snapshot.channel_state = true;
  opt.snapshot.wire_id_modulus = p.modulus;
  opt.load_balancer = p.lb;
  opt.notification_mode = p.transport;
  opt.metric = p.metric;
  if (p.transport == snap::NotificationMode::Digest) {
    // Digest batching delays completion; give the observer headroom.
    opt.observer.completion_timeout = sim::msec(300);
  }
  Network net(make_topo(p.topo), opt);
  auto gens = start_traffic(net, p.seed);
  net.run_for(sim::msec(2));

  const auto campaign = core::run_snapshot_campaign(net, 6, sim::msec(3));
  const auto results = campaign.results(net);
  ASSERT_EQ(results.size(), 6u) << "skipped=" << campaign.skipped;

  const snap::GlobalSnapshot* prev = nullptr;
  for (const auto* snap : results) {
    // Completeness: every unit of every device reported.
    EXPECT_TRUE(snap->complete);
    EXPECT_TRUE(snap->excluded_devices.empty());
    EXPECT_TRUE(snap->all_consistent()) << "snapshot " << snap->id;

    // Causal consistency (flow conservation) on every trunk direction.
    for (const auto& t : net.spec().trunks) {
      const net::UnitId eg_ab{static_cast<net::NodeId>(t.switch_a), t.port_a,
                              net::Direction::Egress};
      const net::UnitId in_ab{static_cast<net::NodeId>(t.switch_b), t.port_b,
                              net::Direction::Ingress};
      const net::UnitId eg_ba{static_cast<net::NodeId>(t.switch_b), t.port_b,
                              net::Direction::Egress};
      const net::UnitId in_ba{static_cast<net::NodeId>(t.switch_a), t.port_a,
                              net::Direction::Ingress};
      for (const auto& [eg, in] :
           {std::pair{eg_ab, in_ab}, std::pair{eg_ba, in_ba}}) {
        const auto e = snap->reports.find(eg);
        const auto i = snap->reports.find(in);
        ASSERT_NE(e, snap->reports.end());
        ASSERT_NE(i, snap->reports.end());
        if (!e->second.consistent || !i->second.consistent) continue;
        EXPECT_EQ(e->second.local_value,
                  i->second.local_value + i->second.channel_value)
            << "snapshot " << snap->id;
      }
    }

    // Monotonicity across snapshots, per unit.
    if (prev != nullptr) {
      for (const auto& [unit, report] : snap->reports) {
        const auto before = prev->reports.find(unit);
        ASSERT_NE(before, prev->reports.end());
        EXPECT_GE(report.local_value, before->second.local_value);
      }
    }
    prev = snap;

    // Synchronization: local snapshot instants spread < 100us (Section 3).
    EXPECT_LT(snap->advance_span(), sim::usec(100)) << "snapshot " << snap->id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SnapshotProperty,
    ::testing::Values(
        Params{Topo::LeafSpine, sw::LoadBalancerKind::Ecmp, 0, 1},
        Params{Topo::LeafSpine, sw::LoadBalancerKind::Flowlet, 0, 2},
        Params{Topo::LeafSpine, sw::LoadBalancerKind::Ecmp, 16, 3},
        Params{Topo::Line, sw::LoadBalancerKind::Ecmp, 0, 4},
        Params{Topo::Line, sw::LoadBalancerKind::Ecmp, 8, 5},
        Params{Topo::Ring, sw::LoadBalancerKind::Ecmp, 0, 6},
        Params{Topo::Ring, sw::LoadBalancerKind::Flowlet, 16, 7},
        Params{Topo::FatTree, sw::LoadBalancerKind::Ecmp, 0, 8},
        Params{Topo::FatTree, sw::LoadBalancerKind::Flowlet, 0, 9},
        Params{Topo::Figure1, sw::LoadBalancerKind::Ecmp, 0, 10},
        Params{Topo::Figure1, sw::LoadBalancerKind::Ecmp, 8, 11},
        Params{Topo::LeafSpine, sw::LoadBalancerKind::Flowlet, 8, 12},
        Params{Topo::LeafSpine, sw::LoadBalancerKind::Ecmp, 0, 13,
               snap::NotificationMode::Digest},
        Params{Topo::Line, sw::LoadBalancerKind::Ecmp, 8, 14,
               snap::NotificationMode::Digest},
        Params{Topo::LeafSpine, sw::LoadBalancerKind::Ecmp, 0, 15,
               snap::NotificationMode::RawSocket, sw::MetricKind::ByteCount},
        Params{Topo::Ring, sw::LoadBalancerKind::Ecmp, 16, 16,
               snap::NotificationMode::RawSocket, sw::MetricKind::ByteCount}),
    // Named to dodge -Wshadow: INSTANTIATE_TEST_SUITE_P's expansion already
    // binds `info`.
    [](const ::testing::TestParamInfo<Params>& param_info) {
      const Params& p = param_info.param;
      return topo_name(p.topo) +
             (p.lb == sw::LoadBalancerKind::Ecmp ? "_Ecmp" : "_Flowlet") +
             "_M" + std::to_string(p.modulus) + "_S" +
             std::to_string(p.seed) +
             (p.transport == snap::NotificationMode::Digest ? "_Digest" : "") +
             (p.metric == sw::MetricKind::ByteCount ? "_Bytes" : "");
    });

// --- Hardware vs idealized algorithm equivalence -----------------------------

class ModeEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModeEquivalence, IdenticalReportsWithoutSkips) {
  // The same seeded simulation run twice — hardware-faithful data plane vs
  // the idealized Figure 3 oracle. Event streams are identical, so every
  // consistent report must match exactly.
  auto run = [&](bool hardware) {
    NetworkOptions opt;
    opt.seed = GetParam();
    opt.snapshot.channel_state = true;
    opt.snapshot.hardware_faithful = hardware;
    auto net = std::make_unique<Network>(net::make_leaf_spine(2, 2, 2), opt);
    auto gens = start_traffic(*net, GetParam());
    net->run_for(sim::msec(2));
    const auto campaign = core::run_snapshot_campaign(*net, 5, sim::msec(3));
    std::vector<std::vector<std::pair<net::UnitId, snap::UnitReport>>> out;
    for (const auto* snap : campaign.results(*net)) {
      std::vector<std::pair<net::UnitId, snap::UnitReport>> sorted(
          snap->reports.begin(), snap->reports.end());
      std::sort(sorted.begin(), sorted.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      out.push_back(std::move(sorted));
    }
    return out;
  };

  const auto hw = run(true);
  const auto ideal = run(false);
  ASSERT_EQ(hw.size(), ideal.size());
  ASSERT_EQ(hw.size(), 5u);
  for (std::size_t s = 0; s < hw.size(); ++s) {
    ASSERT_EQ(hw[s].size(), ideal[s].size());
    for (std::size_t u = 0; u < hw[s].size(); ++u) {
      EXPECT_EQ(hw[s][u].first, ideal[s][u].first);
      EXPECT_EQ(hw[s][u].second.consistent, ideal[s][u].second.consistent);
      if (hw[s][u].second.consistent) {
        EXPECT_EQ(hw[s][u].second.local_value, ideal[s][u].second.local_value);
        EXPECT_EQ(hw[s][u].second.channel_value,
                  ideal[s][u].second.channel_value);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModeEquivalence,
                         ::testing::Values(21, 22, 23, 24, 25));

// --- Liveness under injected faults -------------------------------------------

class FaultLiveness : public ::testing::TestWithParam<double> {};

TEST_P(FaultLiveness, SnapshotsCompleteUnderNotificationLoss) {
  NetworkOptions opt;
  opt.seed = 42;
  opt.timing.notification_drop_probability = GetParam();
  opt.control.proactive_register_poll = true;
  opt.control.register_poll_interval = sim::msec(2);
  opt.start_register_poll = true;
  opt.observer.completion_timeout = sim::msec(80);
  Network net(net::make_leaf_spine(2, 2, 2), opt);
  auto gens = start_traffic(net, 42);
  net.run_for(sim::msec(2));
  const auto campaign = core::run_snapshot_campaign(net, 4, sim::msec(10));
  const auto results = campaign.results(net);
  EXPECT_EQ(results.size(), 4u);
  for (const auto* snap : results) {
    EXPECT_TRUE(snap->excluded_devices.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, FaultLiveness,
                         ::testing::Values(0.0, 0.1, 0.3, 0.6));

// --- Correctness under notification loss --------------------------------------

class LossyCorrectness : public ::testing::TestWithParam<double> {};

TEST_P(LossyCorrectness, ConsistentReportsRemainExact) {
  // Notification drops may conservatively mark snapshots inconsistent or
  // delay reads, but every report the control plane DOES deliver as
  // consistent must still satisfy flow conservation exactly: the registers
  // hold ground truth regardless of what the CPU saw.
  NetworkOptions opt;
  opt.seed = 71;
  opt.snapshot.channel_state = true;
  opt.timing.notification_drop_probability = GetParam();
  opt.control.proactive_register_poll = true;
  opt.control.register_poll_interval = sim::msec(2);
  opt.start_register_poll = true;
  opt.observer.completion_timeout = sim::msec(120);
  Network net(net::make_leaf_spine(2, 2, 2), opt);
  auto gens = start_traffic(net, 71);
  net.run_for(sim::msec(2));
  const auto campaign = core::run_snapshot_campaign(net, 5, sim::msec(15));
  const auto results = campaign.results(net);
  ASSERT_GE(results.size(), 4u);
  std::size_t checked = 0;
  for (const auto* snap : results) {
    for (const auto& t : net.spec().trunks) {
      const net::UnitId eg{static_cast<net::NodeId>(t.switch_a), t.port_a,
                           net::Direction::Egress};
      const net::UnitId in{static_cast<net::NodeId>(t.switch_b), t.port_b,
                           net::Direction::Ingress};
      const auto e = snap->reports.find(eg);
      const auto i = snap->reports.find(in);
      if (e == snap->reports.end() || i == snap->reports.end()) continue;
      if (!e->second.consistent || !i->second.consistent) continue;
      EXPECT_EQ(e->second.local_value,
                i->second.local_value + i->second.channel_value)
          << "snapshot " << snap->id;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u) << "loss rate so high nothing was checkable";
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossyCorrectness,
                         ::testing::Values(0.05, 0.2, 0.4));

}  // namespace
}  // namespace speedlight
