// Parallel engine: channel FIFO + spill semantics, endpoint routing,
// inline and threaded round execution, the run_until contract, and —
// the load-bearing property — digest equality between serial and sharded
// runs of every corpus scenario.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "check/fuzzer.hpp"
#include "check/scenario.hpp"
#include "core/experiment.hpp"
#include "core/network.hpp"
#include "net/topology.hpp"
#include "sim/parallel.hpp"
#include "sim/simulator.hpp"

#ifndef SPEEDLIGHT_CORPUS_DIR
#error "SPEEDLIGHT_CORPUS_DIR must point at tests/corpus"
#endif

namespace speedlight {
namespace {

TEST(ShardChannel, DrainPreservesPostOrderThroughSpill) {
  sim::Simulator sim(1);
  sim::ShardChannel ch(2);  // Ring holds 2: most posts spill.
  std::vector<int> ran;
  for (int i = 0; i < 10; ++i) {
    ch.post(100 + i, 1, [&ran, i]() { ran.push_back(i); });
  }
  EXPECT_EQ(ch.posted(), 10u);
  EXPECT_GT(ch.spilled(), 0u);

  EXPECT_EQ(ch.drain_into(sim), 10u);
  EXPECT_EQ(ch.drain_into(sim), 0u);  // Idempotent once empty.
  sim.run_until(1000);
  ASSERT_EQ(ran.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ran[i], i);
}

TEST(ShardChannel, SameTimestampMessagesKeepPostOrder) {
  sim::Simulator sim(1);
  sim::ShardChannel ch(64);
  std::vector<int> ran;
  for (int i = 0; i < 5; ++i) {
    ch.post(50, 3, [&ran, i]() { ran.push_back(i); });
  }
  ch.drain_into(sim);
  sim.run_until(100);
  ASSERT_EQ(ran.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ran[i], i);
}

TEST(Endpoint, LocalAndRemoteRouting) {
  sim::Simulator sim(1);
  sim::Endpoint unwired;
  EXPECT_FALSE(unwired.wired());

  bool local_ran = false;
  sim::Endpoint loc = sim::Endpoint::local(sim, 7);
  EXPECT_TRUE(loc.wired());
  EXPECT_EQ(loc.key(), 7u);
  loc.post(10, [&local_ran]() { local_ran = true; });
  sim.run_until(10);
  EXPECT_TRUE(local_ran);

  sim::ShardChannel ch(4);
  sim::Endpoint rem = sim::Endpoint::remote(ch, 9);
  EXPECT_TRUE(rem.wired());
  rem.post(20, []() {});
  EXPECT_EQ(ch.posted(), 1u);
}

class ParallelEngineModes
    : public ::testing::TestWithParam<sim::ParallelEngine::Mode> {};

TEST_P(ParallelEngineModes, CrossShardPingPongRunsInTimestampOrder) {
  sim::Simulator a(1);
  sim::Simulator b(1);
  sim::ParallelEngine eng({&a, &b}, GetParam(), /*channel_capacity=*/4);
  sim::ShardChannel& ab = eng.channel(0, 1);
  sim::ShardChannel& ba = eng.channel(1, 0);
  eng.note_cross_latency(10);
  EXPECT_EQ(eng.lookahead(), 10);

  // a(t) -> b(t+10) -> a(t+20) -> ... : each hop records (side, time).
  std::vector<std::pair<char, sim::SimTime>> hops;
  struct Bouncer {
    sim::Simulator* self;
    sim::ShardChannel* out;
    std::vector<std::pair<char, sim::SimTime>>* hops;
    char side;
    Bouncer* peer = nullptr;
    void bounce(int remaining) {
      hops->emplace_back(side, self->now());
      if (remaining == 0) return;
      Bouncer* p = peer;
      out->post(self->now() + 10, 1,
                [p, remaining]() { p->bounce(remaining - 1); });
    }
  };
  Bouncer ba_side{&a, &ab, &hops, 'a'};
  Bouncer bb_side{&b, &ba, &hops, 'b'};
  ba_side.peer = &bb_side;
  bb_side.peer = &ba_side;
  a.at(0, [&ba_side]() { ba_side.bounce(6); });

  const std::size_t executed = eng.run_until(1000);
  EXPECT_EQ(executed, 7u);
  ASSERT_EQ(hops.size(), 7u);
  for (std::size_t i = 0; i < hops.size(); ++i) {
    EXPECT_EQ(hops[i].first, i % 2 == 0 ? 'a' : 'b');
    EXPECT_EQ(hops[i].second, static_cast<sim::SimTime>(10 * i));
  }
  // run_until's contract: both shards end at `until`, even the idle one.
  EXPECT_EQ(a.now(), 1000);
  EXPECT_EQ(b.now(), 1000);
  EXPECT_GE(eng.last_run().rounds, 1u);
  EXPECT_EQ(eng.last_run().executed, 7u);
}

TEST_P(ParallelEngineModes, IdleShardsAdvanceToUntil) {
  sim::Simulator a(1);
  sim::Simulator b(1);
  sim::ParallelEngine eng({&a, &b}, GetParam());
  eng.note_cross_latency(5);
  EXPECT_EQ(eng.run_until(123), 0u);
  EXPECT_EQ(a.now(), 123);
  EXPECT_EQ(b.now(), 123);
}

TEST_P(ParallelEngineModes, AsymmetricChannelLatenciesDeliverInOrder) {
  // Fast channel 0->1 (10 ticks), slow channel 1->0 (1000 ticks): shard 1
  // must follow shard 0 closely, while shard 0 may run far ahead of 1.
  sim::Simulator a(1);
  sim::Simulator b(1);
  sim::ParallelEngine eng({&a, &b}, GetParam(), /*channel_capacity=*/8);
  eng.note_channel_latency(0, 1, 10);
  eng.note_channel_latency(1, 0, 1000);
  EXPECT_EQ(eng.lookahead(), 10);  // Global floor = tightest channel.

  // Shard 0 posts into the fast channel every 50 ticks; shard 1 records
  // the times at which the deliveries execute.
  sim::ShardChannel& ab = eng.channel(0, 1);
  std::vector<sim::SimTime> deliveries;
  struct Sender {
    sim::Simulator* self;
    sim::ShardChannel* out;
    std::vector<sim::SimTime>* log;
    sim::Simulator* peer;
    void fire(int remaining) {
      auto* lg = log;
      auto* p = peer;
      out->post(self->now() + 10, 1, [lg, p]() { lg->push_back(p->now()); });
      if (remaining == 0) return;
      self->at(self->now() + 50, [this, remaining]() { fire(remaining - 1); });
    }
  };
  Sender s{&a, &ab, &deliveries, &b};
  a.at(0, [&s]() { s.fire(9); });

  eng.run_until(2000);
  ASSERT_EQ(deliveries.size(), 10u);
  for (std::size_t i = 0; i < deliveries.size(); ++i) {
    EXPECT_EQ(deliveries[i], static_cast<sim::SimTime>(50 * i + 10));
  }
  EXPECT_EQ(a.now(), 2000);
  EXPECT_EQ(b.now(), 2000);
}

// The batched-window property: with wide lookahead, one sync round covers
// many events. Inline rounds are deterministic, so the bound is exact-ish.
TEST(ParallelEngine, WideLookaheadBatchesManyEventsPerRound) {
  sim::Simulator a(1);
  sim::Simulator b(1);
  sim::ParallelEngine eng({&a, &b}, sim::ParallelEngine::Mode::Inline);
  eng.note_cross_latency(1000);

  std::uint64_t count = 0;
  struct Ticker {
    sim::Simulator* self;
    std::uint64_t* count;
    void tick() {
      ++*count;
      if (self->now() < 10'000) self->at(self->now() + 10, [this]() { tick(); });
    }
  };
  Ticker ta{&a, &count};
  Ticker tb{&b, &count};
  a.at(0, [&ta]() { ta.tick(); });
  b.at(5, [&tb]() { tb.tick(); });

  eng.run_until(10'000);
  EXPECT_GE(count, 2000u);
  // ~10 windows of width ~1000 cover the run; allow generous slack, but
  // far below one round per event (the global-window regime).
  EXPECT_LE(eng.last_run().rounds, 40u);
  EXPECT_GE(eng.last_run().avg_window_span(), 250.0);
}

INSTANTIATE_TEST_SUITE_P(Modes, ParallelEngineModes,
                         ::testing::Values(sim::ParallelEngine::Mode::Inline,
                                           sim::ParallelEngine::Mode::Threads),
                         [](const auto& info) {
                           return info.param ==
                                          sim::ParallelEngine::Mode::Inline
                                      ? "Inline"
                                      : "Threads";
                         });

// The acceptance property: a sharded network produces the exact snapshot
// campaign of the serial one. Exercised through the real Network facade in
// both execution modes.
TEST(ParallelNetwork, CampaignBitIdenticalAcrossShardCountsAndModes) {
  struct Config {
    std::size_t shards;
    core::NetworkOptions::ExecMode mode;
  };
  const Config configs[] = {
      {1, core::NetworkOptions::ExecMode::Auto},
      {2, core::NetworkOptions::ExecMode::Inline},
      {4, core::NetworkOptions::ExecMode::Inline},
      {4, core::NetworkOptions::ExecMode::Threads},
  };
  std::vector<std::uint64_t> totals;
  std::vector<std::size_t> completed;
  for (const Config& cfg : configs) {
    core::NetworkOptions opt;
    opt.seed = 77;
    opt.shards = cfg.shards;
    opt.exec_mode = cfg.mode;
    core::Network net(net::make_ring(4), opt);
    EXPECT_EQ(net.num_shards(), cfg.shards);
    const auto campaign = core::run_snapshot_campaign(net, 3, sim::msec(2));
    std::uint64_t total = 0;
    std::size_t done = 0;
    for (const auto* snap : campaign.results(net)) {
      ++done;
      total += snap->total_value(false);
      for (const auto& [unit, r] : snap->reports) {
        total ^= (r.local_value * 0x9E3779B97F4A7C15ULL) ^ unit.port;
      }
    }
    totals.push_back(total);
    completed.push_back(done);
  }
  for (std::size_t i = 1; i < totals.size(); ++i) {
    EXPECT_EQ(totals[i], totals[0]) << "config " << i;
    EXPECT_EQ(completed[i], completed[0]) << "config " << i;
  }
  EXPECT_GT(completed[0], 0u);
}

// Deliberately skewed link latencies: one WAN-slow trunk and one merely
// sluggish one among fast 500ns trunks, so the lookahead matrix rows are
// genuinely asymmetric at every shard count. The campaign must still be
// bit-identical across {1,2,4,8} shards in both execution modes.
TEST(ParallelNetwork, SkewedTrunkLatenciesCampaignBitIdentical) {
  net::TopologySpec spec = net::make_ring(8);
  ASSERT_GE(spec.trunks.size(), 8u);
  spec.trunks[3].propagation = sim::usec(50);  // Cut at every shard count.
  spec.trunks[7].propagation = sim::usec(5);

  struct Config {
    std::size_t shards;
    core::NetworkOptions::ExecMode mode;
  };
  const Config configs[] = {
      {1, core::NetworkOptions::ExecMode::Auto},
      {2, core::NetworkOptions::ExecMode::Inline},
      {2, core::NetworkOptions::ExecMode::Threads},
      {4, core::NetworkOptions::ExecMode::Inline},
      {4, core::NetworkOptions::ExecMode::Threads},
      {8, core::NetworkOptions::ExecMode::Inline},
      {8, core::NetworkOptions::ExecMode::Threads},
  };
  std::vector<std::uint64_t> totals;
  std::vector<std::size_t> completed;
  for (const Config& cfg : configs) {
    core::NetworkOptions opt;
    opt.seed = 501;
    opt.shards = cfg.shards;
    opt.exec_mode = cfg.mode;
    core::Network net(spec, opt);
    EXPECT_EQ(net.num_shards(), cfg.shards);
    const auto campaign = core::run_snapshot_campaign(net, 3, sim::msec(2));
    std::uint64_t total = 0;
    std::size_t done = 0;
    for (const auto* snap : campaign.results(net)) {
      ++done;
      total += snap->total_value(false);
      for (const auto& [unit, r] : snap->reports) {
        total ^= (r.local_value * 0x9E3779B97F4A7C15ULL) ^ unit.port;
      }
    }
    totals.push_back(total);
    completed.push_back(done);
  }
  for (std::size_t i = 1; i < totals.size(); ++i) {
    EXPECT_EQ(totals[i], totals[0]) << "config " << i;
    EXPECT_EQ(completed[i], completed[0]) << "config " << i;
  }
  EXPECT_GT(completed[0], 0u);
}

// Every corpus scenario must produce the serial digest at 2 and 4 shards —
// the same oracle speedlight_fuzz --digest --shards N applies to random
// scenarios, pinned to the committed reproducers.
TEST(ParallelNetwork, CorpusDigestsMatchSerialAtTwoAndFourShards) {
  std::vector<std::filesystem::path> files;
  for (const auto& e :
       std::filesystem::directory_iterator(SPEEDLIGHT_CORPUS_DIR)) {
    if (e.path().extension() == ".scenario") files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty());

  for (const auto& f : files) {
    const check::Scenario s = check::load_scenario(f.string());
    check::RunOptions opts;
    opts.with_oracle = false;
    opts.shards = 1;
    const check::RunResult serial = check::run_scenario(s, opts);
    for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
      opts.shards = shards;
      const check::RunResult sharded = check::run_scenario(s, opts);
      EXPECT_EQ(sharded.digest, serial.digest)
          << f.filename() << " at " << shards << " shards";
      EXPECT_EQ(sharded.completed, serial.completed) << f.filename();
    }
  }
}

}  // namespace
}  // namespace speedlight
