// The public facade: builder wiring, campaign helpers, value extraction.
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "net/topology.hpp"

namespace speedlight {
namespace {

using core::Network;
using core::NetworkOptions;

TEST(Network, BuildsAllNodeKinds) {
  Network net(net::make_leaf_spine(2, 2, 3), NetworkOptions{});
  EXPECT_EQ(net.num_switches(), 4u);
  EXPECT_EQ(net.num_hosts(), 6u);
  EXPECT_EQ(net.switch_at(0).name(), "leaf0");
  EXPECT_EQ(net.host(0).name(), "h0");
  EXPECT_EQ(net.host_id(0), 4u);  // Switches take ids 0..3.
}

TEST(Network, RejectsInvalidSpec) {
  net::TopologySpec bad = net::make_star(2);
  bad.hosts.push_back({"dup", 0, 0});
  EXPECT_THROW(Network(bad, NetworkOptions{}), std::invalid_argument);
}

TEST(Network, DeterministicAcrossRuns) {
  auto run = []() {
    NetworkOptions opt;
    opt.seed = 99;
    Network net(net::make_leaf_spine(2, 2, 3), opt);
    for (int i = 0; i < 50; ++i) {
      net.host(0).send(net.host_id(5), static_cast<net::FlowId>(i), 1500);
    }
    const auto* snap = net.take_snapshot();
    return snap != nullptr ? snap->advance_span() : -1;
  };
  EXPECT_EQ(run(), run());
}

TEST(Network, SeedChangesOutcome) {
  auto run = [](std::uint64_t seed) {
    NetworkOptions opt;
    opt.seed = seed;
    Network net(net::make_leaf_spine(2, 2, 3), opt);
    const auto* snap = net.take_snapshot();
    return snap != nullptr ? snap->advance_span() : -1;
  };
  EXPECT_NE(run(1), run(2));
}

TEST(Network, TakeSnapshotReturnsNullWhenWindowExhausted) {
  NetworkOptions opt;
  opt.snapshot.wire_id_modulus = 8;
  Network net(net::make_star(2), opt);
  for (int i = 0; i < 3; ++i) {
    net.observer().request_snapshot(net.now() + sim::sec(10));
  }
  EXPECT_EQ(net.take_snapshot(), nullptr);
}

TEST(Campaign, RunsRequestedCount) {
  Network net(net::make_star(3), NetworkOptions{});
  const auto campaign = core::run_snapshot_campaign(net, 7, sim::msec(2));
  EXPECT_EQ(campaign.ids.size(), 7u);
  EXPECT_EQ(campaign.skipped, 0u);
  EXPECT_EQ(campaign.results(net).size(), 7u);
}

TEST(Campaign, ExtractValuesFromSnapshots) {
  Network net(net::make_star(2), NetworkOptions{});
  for (int i = 0; i < 4; ++i) net.host(0).send(net.host_id(1), 1, 100);
  net.run_for(sim::msec(1));
  const auto* snap = net.take_snapshot();
  ASSERT_NE(snap, nullptr);
  std::vector<double> out;
  ASSERT_TRUE(core::extract_values(
      *snap,
      {{0, 0, net::Direction::Ingress}, {0, 1, net::Direction::Egress}}, out));
  EXPECT_EQ(out, (std::vector<double>{4.0, 4.0}));
  // Unknown unit -> false.
  EXPECT_FALSE(core::extract_values(
      *snap, {{3, 0, net::Direction::Ingress}}, out));
}

TEST(Campaign, SnapshotDeltasGiveExactWindowCounts) {
  Network net(net::make_star(2), NetworkOptions{});
  const auto* first = net.take_snapshot();
  ASSERT_NE(first, nullptr);
  const auto first_id = first->id;
  // Exactly 11 packets between the two snapshots.
  for (int i = 0; i < 11; ++i) net.host(0).send(net.host_id(1), 1, 100);
  net.run_for(sim::msec(1));
  const auto* second = net.take_snapshot();
  ASSERT_NE(second, nullptr);
  const auto deltas = core::snapshot_deltas(
      *net.observer().result(first_id), *second);
  ASSERT_EQ(deltas.size(), 4u);
  std::uint64_t total = 0;
  for (const auto& d : deltas) {
    total += d.delta;
    EXPECT_GE(d.rate_per_sec, 0.0);
  }
  EXPECT_EQ(total, 22u);  // 11 at ingress 0 + 11 at egress 1.
}

TEST(Campaign, SnapshotCsvExport) {
  Network net(net::make_star(2), NetworkOptions{});
  for (int i = 0; i < 3; ++i) net.host(0).send(net.host_id(1), 1, 100);
  net.run_for(sim::msec(1));
  const auto campaign = core::run_snapshot_campaign(net, 2, sim::msec(2));
  std::ostringstream os;
  core::write_snapshot_csv(os, campaign.results(net));
  const std::string csv = os.str();
  // Header + 2 snapshots x 4 units.
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')), 9);
  EXPECT_NE(csv.find("snapshot_id,scheduled_ms"), std::string::npos);
  EXPECT_NE(csv.find("ingress"), std::string::npos);
  EXPECT_NE(csv.find("egress"), std::string::npos);
  // The 3 packets show up in the ingress value column of some row.
  EXPECT_NE(csv.find(",1,0,3,"), std::string::npos);
}

TEST(Campaign, PollingCsvExport) {
  Network net(net::make_star(2), NetworkOptions{});
  net.register_all_units_for_polling();
  const auto sweeps = core::run_polling_campaign(net, 2, sim::msec(2));
  std::ostringstream os;
  core::write_polling_csv(os, sweeps);
  const std::string csv = os.str();
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')), 9);
  EXPECT_NE(csv.find("sweep,read_ms"), std::string::npos);
}

TEST(Campaign, PollingCampaignProducesSweeps) {
  Network net(net::make_star(3), NetworkOptions{});
  net.register_all_units_for_polling();
  const auto sweeps = core::run_polling_campaign(net, 4, sim::msec(5));
  EXPECT_EQ(sweeps.size(), 4u);
  for (const auto& s : sweeps) {
    EXPECT_EQ(s.samples.size(), 6u);
  }
}

}  // namespace
}  // namespace speedlight
