// Partitioner invariants: co-sharding of hosts with their switch, shard
// contiguity and balance, zero-latency trunk contraction, strictly
// positive cross-shard lookahead, and full determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "net/partition.hpp"
#include "net/topology.hpp"
#include "sim/time.hpp"

namespace speedlight::net {
namespace {

/// Every structural invariant a Partition must satisfy against its spec.
void expect_valid(const TopologySpec& spec, const Partition& p,
                  std::size_t requested) {
  ASSERT_EQ(p.switch_shard.size(), spec.switches.size());
  ASSERT_EQ(p.host_shard.size(), spec.hosts.size());
  ASSERT_GE(p.num_shards, 1u);
  EXPECT_LE(p.num_shards, std::max<std::size_t>(1, requested));
  EXPECT_LE(p.num_shards, std::max<std::size_t>(1, spec.switches.size()));

  // Shards are contiguous 0..num_shards-1 and all non-empty.
  std::set<std::uint32_t> used;
  for (const auto sh : p.switch_shard) {
    EXPECT_LT(sh, p.num_shards);
    used.insert(sh);
  }
  EXPECT_EQ(used.size(), p.num_shards);

  // Hosts ride with their attached switch.
  for (std::size_t h = 0; h < spec.hosts.size(); ++h) {
    EXPECT_EQ(p.host_shard[h], p.switch_shard[spec.hosts[h].attached_switch])
        << "host " << h;
  }

  // Cross-trunk accounting and lookahead.
  std::size_t crossing = 0;
  sim::Duration min_lat = 0;
  for (const auto& t : spec.trunks) {
    if (p.switch_shard[t.switch_a] == p.switch_shard[t.switch_b]) continue;
    ++crossing;
    EXPECT_GT(t.propagation, 0) << "zero-latency trunk crosses shards";
    if (min_lat == 0 || t.propagation < min_lat) min_lat = t.propagation;
  }
  EXPECT_EQ(p.cross_trunks, crossing);
  if (crossing > 0) {
    EXPECT_EQ(p.min_cross_latency, min_lat);
    EXPECT_GT(p.min_cross_latency, 0);
  }
}

TEST(Partition, TrivialWhenOneShardRequested) {
  const TopologySpec spec = make_leaf_spine(4, 4, 3);
  for (const std::size_t req : {std::size_t{0}, std::size_t{1}}) {
    const Partition p = partition_topology(spec, req);
    EXPECT_EQ(p.num_shards, 1u);
    EXPECT_EQ(p.cross_trunks, 0u);
    expect_valid(spec, p, req);
    for (const auto sh : p.switch_shard) EXPECT_EQ(sh, 0u);
  }
}

TEST(Partition, StandardTopologiesAllShardCounts) {
  const TopologySpec specs[] = {
      make_line(2),          make_line(7),    make_ring(5),
      make_leaf_spine(4, 2, 3), make_fat_tree(4), make_figure1(),
      make_star(4),
  };
  for (const auto& spec : specs) {
    for (std::size_t req = 1; req <= 9; ++req) {
      expect_valid(spec, partition_topology(spec, req), req);
    }
  }
}

TEST(Partition, RequestBeyondSwitchCountIsClamped) {
  const TopologySpec spec = make_ring(3);
  const Partition p = partition_topology(spec, 64);
  EXPECT_EQ(p.num_shards, 3u);
  expect_valid(spec, p, 64);
}

TEST(Partition, ZeroLatencyTrunksAreContracted) {
  // line of 4 switches where the middle trunk has zero propagation: the
  // two middle switches must land together no matter the shard count.
  TopologySpec spec = make_line(4);
  ASSERT_EQ(spec.trunks.size(), 3u);
  spec.trunks[1].propagation = 0;
  for (std::size_t req = 2; req <= 4; ++req) {
    const Partition p = partition_topology(spec, req);
    expect_valid(spec, p, req);
    EXPECT_EQ(p.switch_shard[1], p.switch_shard[2]) << "req=" << req;
    EXPECT_LE(p.num_shards, 3u);  // Only 3 components exist.
  }
}

TEST(Partition, AllZeroLatencyCollapsesToOneShard) {
  TopologySpec spec = make_ring(6);
  for (auto& t : spec.trunks) t.propagation = 0;
  const Partition p = partition_topology(spec, 4);
  EXPECT_EQ(p.num_shards, 1u);
  EXPECT_EQ(p.cross_trunks, 0u);
}

TEST(Partition, BalancedPacking) {
  // 8 independent switches (star topologies have no trunks) spread over 4
  // shards must land 2 per shard — greedy least-loaded with equal sizes.
  TopologySpec spec;
  for (int i = 0; i < 8; ++i) {
    spec.switches.push_back({"s" + std::to_string(i), 4, true});
  }
  const Partition p = partition_topology(spec, 4);
  EXPECT_EQ(p.num_shards, 4u);
  std::vector<int> load(4, 0);
  for (const auto sh : p.switch_shard) ++load[sh];
  for (const int l : load) EXPECT_EQ(l, 2);
}

TEST(Partition, Deterministic) {
  const TopologySpec spec = make_fat_tree(4);
  const Partition a = partition_topology(spec, 5);
  const Partition b = partition_topology(spec, 5);
  EXPECT_EQ(a.switch_shard, b.switch_shard);
  EXPECT_EQ(a.host_shard, b.host_shard);
  EXPECT_EQ(a.num_shards, b.num_shards);
  EXPECT_EQ(a.min_cross_latency, b.min_cross_latency);
  EXPECT_EQ(a.cross_trunks, b.cross_trunks);
}

}  // namespace
}  // namespace speedlight::net
