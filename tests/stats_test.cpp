// Unit tests for the statistics toolkit: summaries, CDFs, Spearman
// correlation, and the paper's two-phase EWMA.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "stats/cdf.hpp"
#include "stats/ewma.hpp"
#include "stats/spearman.hpp"
#include "stats/summary.hpp"

namespace speedlight::stats {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
}

TEST(Summary, SampleVarianceUsesBessel) {
  Summary s;
  s.add(1.0);
  EXPECT_EQ(s.sample_variance(), 0.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
}

TEST(Summary, MergeMatchesSequential) {
  Summary a;
  Summary b;
  Summary all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10 + i;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a;
  a.add(5.0);
  Summary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(BatchStats, StddevAndQuantile) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_NEAR(stddev_of(xs), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean_of(xs), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(Cdf, FractionsAndPercentiles) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(i);
  EXPECT_DOUBLE_EQ(cdf.at(50), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(100), 1.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 50.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 100.0);
}

TEST(Cdf, PointsCoverFullRange) {
  Cdf cdf;
  for (int i = 0; i < 1000; ++i) cdf.add(i * 0.5);
  const auto pts = cdf.points(20);
  ASSERT_FALSE(pts.empty());
  EXPECT_DOUBLE_EQ(pts.front().value, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().value, 999 * 0.5);
  EXPECT_DOUBLE_EQ(pts.back().fraction, 1.0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i - 1].value, pts[i].value);
    EXPECT_LT(pts[i - 1].fraction, pts[i].fraction);
  }
}

TEST(Cdf, PrintsReadableRows) {
  Cdf cdf({1000.0, 2000.0, 3000.0});
  std::ostringstream os;
  cdf.print(os, "latency", 1e-3, "us", 5);
  const std::string out = os.str();
  EXPECT_NE(out.find("latency"), std::string::npos);
  EXPECT_NE(out.find("median"), std::string::npos);
  EXPECT_NE(out.find("us"), std::string::npos);
}

TEST(Ranks, AverageTies) {
  const auto r = ranks({10.0, 20.0, 20.0, 30.0});
  ASSERT_EQ(r.size(), 4u);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{2, 4, 6, 8, 10};
  const auto r = pearson(xs, ys);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 1.0, 1e-12);
}

TEST(Pearson, UndefinedOnConstantInput) {
  EXPECT_FALSE(pearson({1, 1, 1, 1}, {1, 2, 3, 4}).has_value());
  EXPECT_FALSE(pearson({1, 2}, {1, 2}).has_value());  // Too short.
  EXPECT_FALSE(pearson({1, 2, 3}, {1, 2}).has_value());  // Length mismatch.
}

TEST(Spearman, MonotoneNonlinearIsPerfect) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 1; i <= 20; ++i) {
    xs.push_back(i);
    ys.push_back(std::exp(0.3 * i));  // Monotone but very nonlinear.
  }
  const auto c = spearman(xs, ys);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(c->rho, 1.0, 1e-12);
  EXPECT_LT(c->p_value, 1e-6);
  EXPECT_TRUE(c->significant(0.1));
}

TEST(Spearman, AntiCorrelation) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 15; ++i) {
    xs.push_back(i);
    ys.push_back(-2.0 * i + 100);
  }
  const auto c = spearman(xs, ys);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(c->rho, -1.0, 1e-12);
  EXPECT_LT(c->p_value, 1e-6);
}

TEST(Spearman, IndependentSeriesInsignificant) {
  // Deterministic pseudo-random but uncorrelated series.
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(std::sin(i * 12.9898) * 43758.5453);
    ys.push_back(std::sin(i * 78.233 + 1.0) * 12543.123);
  }
  const auto c = spearman(xs, ys);
  ASSERT_TRUE(c.has_value());
  EXPECT_LT(std::fabs(c->rho), 0.25);
  EXPECT_FALSE(c->significant(0.01));
}

TEST(Spearman, KnownSmallExample) {
  // Classic example: rho = 1 - 6*sum(d^2)/(n(n^2-1)).
  const std::vector<double> xs{86, 97, 99, 100, 101, 103, 106, 110, 112, 113};
  const std::vector<double> ys{2, 20, 28, 27, 50, 29, 7, 17, 6, 12};
  const auto c = spearman(xs, ys);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(c->rho, -0.1757575, 1e-6);
}

TEST(Spearman, UndefinedCases) {
  EXPECT_FALSE(spearman({1, 2, 3}, {1, 2, 3}).has_value());  // n < 4.
  EXPECT_FALSE(spearman({5, 5, 5, 5}, {1, 2, 3, 4}).has_value());
}

TEST(Kendall, PerfectMonotone) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 12; ++i) {
    xs.push_back(i);
    ys.push_back(i * i + 1.0);
  }
  const auto c = kendall(xs, ys);
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->rho, 1.0);
  EXPECT_LT(c->p_value, 1e-4);
}

TEST(Kendall, PerfectAntitone) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 12; ++i) {
    xs.push_back(i);
    ys.push_back(-3.0 * i);
  }
  const auto c = kendall(xs, ys);
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->rho, -1.0);
}

TEST(Kendall, KnownSmallExample) {
  // Classic 2-rater example: tau = (C-D)/n0 without ties.
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{3, 4, 1, 2, 5};
  // Pairs: C=6, D=4 -> tau = 2/10 = 0.2.
  const auto c = kendall(xs, ys);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(c->rho, 0.2, 1e-12);
  EXPECT_FALSE(c->significant(0.05));
}

TEST(Kendall, TieCorrection) {
  // Ties shrink the denominator (tau-b); result stays within [-1, 1] and
  // agrees in sign with the untied trend.
  const std::vector<double> xs{1, 1, 2, 3, 4, 5};
  const std::vector<double> ys{2, 3, 3, 5, 7, 7};
  const auto c = kendall(xs, ys);
  ASSERT_TRUE(c.has_value());
  EXPECT_GT(c->rho, 0.7);
  EXPECT_LE(c->rho, 1.0);
}

TEST(Kendall, UndefinedCases) {
  EXPECT_FALSE(kendall({1, 2, 3}, {1, 2, 3}).has_value());       // n < 4.
  EXPECT_FALSE(kendall({5, 5, 5, 5}, {1, 2, 3, 4}).has_value()); // Constant.
  EXPECT_FALSE(kendall({1, 2, 3, 4}, {1, 2, 3}).has_value());    // Length.
}

TEST(Kendall, AgreesWithSpearmanOnDirection) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 40; ++i) {
    xs.push_back(std::sin(i * 0.7));
    ys.push_back(std::sin(i * 0.7) * 2.0 + std::cos(i * 3.1) * 0.2);
  }
  const auto k = kendall(xs, ys);
  const auto s = spearman(xs, ys);
  ASSERT_TRUE(k && s);
  EXPECT_GT(k->rho * s->rho, 0.0);  // Same sign.
  EXPECT_TRUE(k->significant(0.01));
  EXPECT_TRUE(s->significant(0.01));
}

TEST(Ewma, BasicDecay) {
  Ewma e(0.5);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);  // Seeded with first sample.
  e.add(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
  e.add(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 17.5);
}

TEST(TwoPhaseEwma, ConstantInterarrivalConverges) {
  TwoPhaseInterarrivalEwma e;
  std::int64_t t = 0;
  for (int i = 0; i < 100; ++i) {
    e.on_packet(t);
    t += 1000;  // 1us gaps
  }
  EXPECT_NEAR(e.value(), 1000.0, 1.0);
}

TEST(TwoPhaseEwma, MatchesHalfDecayOverPairAverages) {
  // Reference: EWMA with alpha=0.5 over averages of consecutive
  // interarrival pairs.
  TwoPhaseInterarrivalEwma e;
  const std::vector<std::int64_t> gaps{100, 300, 500, 700, 200, 600, 400, 800};
  std::int64_t t = 0;
  e.on_packet(t);
  double ref = 0.0;
  bool seeded = false;
  for (std::size_t i = 0; i < gaps.size(); ++i) {
    t += gaps[i];
    e.on_packet(t);
    if (i % 2 == 1) {
      const double avg = (gaps[i - 1] + gaps[i]) / 2.0;
      ref = seeded ? (ref + avg) / 2.0 : avg;
      seeded = true;
    }
  }
  EXPECT_NEAR(e.value(), ref, 1e-9);
}

TEST(TwoPhaseEwma, TracksRateChanges) {
  TwoPhaseInterarrivalEwma e;
  std::int64_t t = 0;
  for (int i = 0; i < 50; ++i) {
    e.on_packet(t);
    t += 100;
  }
  const double fast = e.value();
  for (int i = 0; i < 50; ++i) {
    e.on_packet(t);
    t += 10000;
  }
  EXPECT_GT(e.value(), fast * 10);
  EXPECT_NEAR(e.value(), 10000.0, 500.0);
}

TEST(TwoPhaseEwma, ResetClearsState) {
  TwoPhaseInterarrivalEwma e;
  e.on_packet(0);
  e.on_packet(100);
  e.on_packet(200);
  EXPECT_GT(e.value(), 0.0);
  e.reset();
  EXPECT_EQ(e.value(), 0.0);
  EXPECT_EQ(e.packets_seen(), 0u);
}

}  // namespace
}  // namespace speedlight::stats
