// SoA refactor equivalence battery: the struct-of-arrays topology core,
// lazy port materialization, compact interned routes, and streaming
// metrics must be *observationally invisible* — every scenario's end-state
// digest (FNV-1a over all completed snapshots, see check/fuzzer.cpp) must
// be byte-identical between the serial engine and the 4-shard parallel
// engine, for the whole committed corpus plus 100 fresh generated seeds.
//
// Equality is asserted within one process run (shards=1 vs shards=4, and
// serial-vs-serial repeats) rather than against absolute pinned constants:
// scenario generation draws from libm (exponential gaps), so constants
// would pin the math library, not the protocol.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "check/fuzzer.hpp"
#include "check/scenario.hpp"

#ifndef SPEEDLIGHT_CORPUS_DIR
#error "SPEEDLIGHT_CORPUS_DIR must point at tests/corpus"
#endif

namespace speedlight {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(SPEEDLIGHT_CORPUS_DIR)) {
    if (entry.path().extension() == ".scenario") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

check::RunResult run_at(const check::Scenario& s, std::size_t shards) {
  return check::run_scenario(s, {.with_oracle = true, .shards = shards});
}

TEST(SoaEquivalence, CorpusDigestsShardInvariant) {
  ASSERT_GE(corpus_files().size(), 4u);
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path);
    const check::Scenario s = check::load_scenario(path);
    const auto serial = run_at(s, 1);
    const auto sharded = run_at(s, 4);
    EXPECT_EQ(serial.digest, sharded.digest) << s.label();
    EXPECT_EQ(serial.completed, sharded.completed) << s.label();
    EXPECT_GT(serial.completed, 0u) << s.label();
  }
}

TEST(SoaEquivalence, FreshSeedsShardInvariant) {
  // 100 generated scenarios, the full spread of topologies, faults, and
  // protocol variants. Every one must digest identically at 1 and 4 shards.
  std::size_t checked = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const check::Scenario s = check::generate_scenario(seed);
    const auto serial = run_at(s, 1);
    const auto sharded = run_at(s, 4);
    ASSERT_EQ(serial.digest, sharded.digest) << s.label();
    ASSERT_EQ(serial.completed, sharded.completed) << s.label();
    ++checked;
  }
  EXPECT_EQ(checked, 100u);
}

TEST(SoaEquivalence, SerialRunsAreReproducible) {
  // Same scenario, same engine, twice in one process: the digest is a pure
  // function of the scenario (no hidden global state in the SoA arenas or
  // the interned route pool).
  for (const std::uint64_t seed : {7ull, 42ull, 99ull}) {
    const check::Scenario s = check::generate_scenario(seed);
    const auto a = run_at(s, 1);
    const auto b = run_at(s, 1);
    EXPECT_EQ(a.digest, b.digest) << s.label();
  }
}

}  // namespace
}  // namespace speedlight
