// Switch model behavior: forwarding, counters, queues, CoS, load balancing,
// and snapshot header handling — exercised through the core Network
// builder on small topologies.
#include <gtest/gtest.h>

#include <set>

#include "core/network.hpp"
#include "net/topology.hpp"
#include "switchlib/load_balancer.hpp"
#include "switchlib/queue.hpp"

namespace speedlight {
namespace {

using core::Network;
using core::NetworkOptions;

TEST(SwitchForwarding, StarDeliversBetweenHosts) {
  Network net(net::make_star(3), NetworkOptions{});
  net.host(0).send(net.host_id(1), 1, 1500);
  net.host(0).send(net.host_id(2), 2, 1500);
  net.run_for(sim::msec(1));
  EXPECT_EQ(net.host(1).packets_received(), 1u);
  EXPECT_EQ(net.host(2).packets_received(), 1u);
  EXPECT_EQ(net.host(1).header_leaks(), 0u);  // Stripped at egress.
}

TEST(SwitchForwarding, LeafSpineCrossRackDelivery) {
  Network net(net::make_leaf_spine(2, 2, 3), NetworkOptions{});
  // Host 0 (leaf0) -> host 5 (leaf1): exactly 3 switch hops.
  for (int i = 0; i < 20; ++i) net.host(0).send(net.host_id(5), 1, 1500);
  net.run_for(sim::msec(2));
  EXPECT_EQ(net.host(5).packets_received(), 20u);
  EXPECT_EQ(net.host(5).header_leaks(), 0u);
}

TEST(SwitchForwarding, UnroutableDropsCounted) {
  Network net(net::make_star(2), NetworkOptions{});
  net.host(0).send(9999, 1, 100);  // No such destination.
  net.run_for(sim::msec(1));
  EXPECT_EQ(net.switch_at(0).forwarding_drops(), 1u);
}

TEST(SwitchCounters, IngressEgressPacketCounts) {
  Network net(net::make_star(2), NetworkOptions{});
  for (int i = 0; i < 7; ++i) net.host(0).send(net.host_id(1), 1, 1000);
  net.run_for(sim::msec(1));
  const auto& in = net.switch_at(0).counters(0, net::Direction::Ingress);
  const auto& out = net.switch_at(0).counters(1, net::Direction::Egress);
  EXPECT_EQ(in.packets(), 7u);
  EXPECT_EQ(in.bytes(), 7000u);
  EXPECT_EQ(out.packets(), 7u);
}

TEST(SwitchCounters, EwmaInterarrivalTracksRate) {
  NetworkOptions opt;
  opt.metric = sw::MetricKind::EwmaInterarrival;
  Network net(net::make_star(2), opt);
  // 1000 packets, 10us apart.
  for (int i = 0; i < 1000; ++i) {
    net.simulator().at(i * sim::usec(10),
                       [&net]() { net.host(0).send(net.host_id(1), 1, 500); });
  }
  net.run_for(sim::msec(20));
  const auto& c = net.switch_at(0).counters(0, net::Direction::Ingress);
  EXPECT_NEAR(c.ewma_interarrival_ns(), 10000.0, 500.0);
}

TEST(SwitchQueues, FifoQueueDropsWhenFull) {
  sw::FifoQueue q(3);
  for (int i = 0; i < 5; ++i) q.push(net::Packet{});
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.drops(), 2u);
  EXPECT_EQ(q.max_depth(), 3u);
}

TEST(SwitchQueues, CosStrictPriority) {
  sw::CosQueueSet q(2, 10);
  net::Packet low;
  low.id = 1;
  net::Packet high;
  high.id = 2;
  ASSERT_TRUE(q.push(low, 1));
  ASSERT_TRUE(q.push(high, 0));
  auto first = q.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->first->id, 2u);  // Class 0 drains first.
  EXPECT_EQ(first->second, 0u);
  auto second = q.pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->first->id, 1u);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(SwitchQueues, OversubscriptionDropsAtEgress) {
  // Two hosts blast one destination at full host-link rate: the shared
  // egress link saturates and the bounded queue eventually drops.
  net::TopologySpec spec = net::make_star(3);
  spec.host_link_bandwidth_bps = 25e9;
  NetworkOptions opt;
  opt.queue_capacity = 16;
  Network net(spec, opt);
  for (int i = 0; i < 3000; ++i) {
    net.simulator().at(i * sim::nsec(480), [&net]() {
      net.host(0).send(net.host_id(2), 1, 1500);
      net.host(1).send(net.host_id(2), 2, 1500);
    });
  }
  net.run_for(sim::msec(10));
  EXPECT_GT(net.switch_at(0).queue_drops(), 0u);
  EXPECT_GT(net.host(2).packets_received(), 1000u);
}

TEST(LoadBalancer, EcmpPinsFlows) {
  sw::EcmpBalancer lb(42);
  net::Packet p;
  p.flow = 7;
  p.src_host = 1;
  p.dst_host = 2;
  const std::vector<net::PortId> candidates{3, 4, 5};
  const net::PortId first = lb.choose(p, candidates, 0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(lb.choose(p, candidates, i * 1000), first);
  }
}

TEST(LoadBalancer, EcmpSpreadsFlows) {
  sw::EcmpBalancer lb(42);
  const std::vector<net::PortId> candidates{0, 1};
  std::set<net::PortId> used;
  for (net::FlowId f = 0; f < 64; ++f) {
    net::Packet p;
    p.flow = f;
    used.insert(lb.choose(p, candidates, 0));
  }
  EXPECT_EQ(used.size(), 2u);
}

TEST(LoadBalancer, FlowletSticksWithinGap) {
  sw::FlowletBalancer lb(42, sim::usec(100), sim::Rng(1));
  net::Packet p;
  p.flow = 9;
  const std::vector<net::PortId> candidates{0, 1, 2};
  const net::PortId first = lb.choose(p, candidates, 0);
  // Packets 10us apart never exceed the gap: same path.
  for (int i = 1; i <= 20; ++i) {
    EXPECT_EQ(lb.choose(p, candidates, i * sim::usec(10)), first);
  }
  EXPECT_EQ(lb.flowlets_started(), 1u);
}

TEST(LoadBalancer, FlowletRepicksAfterGap) {
  sw::FlowletBalancer lb(42, sim::usec(100), sim::Rng(1));
  net::Packet p;
  p.flow = 9;
  const std::vector<net::PortId> candidates{0, 1};
  sim::SimTime t = 0;
  for (int i = 0; i < 200; ++i) {
    lb.choose(p, candidates, t);
    t += sim::usec(500);  // Every packet starts a new flowlet.
  }
  EXPECT_EQ(lb.flowlets_started(), 200u);
}

TEST(SwitchSnapshot, HeadersAddedInsideStrippedAtEdge) {
  // On a 2-switch line, verify headers traverse the trunk but never reach
  // hosts.
  Network net(net::make_line(2), NetworkOptions{});
  for (int i = 0; i < 10; ++i) net.host(0).send(net.host_id(1), 1, 1000);
  net.run_for(sim::msec(2));
  EXPECT_EQ(net.host(1).packets_received(), 10u);
  EXPECT_EQ(net.host(1).header_leaks(), 0u);
}

TEST(SwitchSnapshot, FibVersionStamped) {
  NetworkOptions opt;
  opt.metric = sw::MetricKind::ForwardingVersion;
  Network net(net::make_star(2), opt);
  const std::uint64_t v0 = net.switch_at(0).routing().version();
  net.host(0).send(net.host_id(1), 1, 100);
  net.run_for(sim::msec(1));
  EXPECT_EQ(net.switch_at(0)
                .counters(0, net::Direction::Ingress)
                .read(sw::MetricKind::ForwardingVersion),
            v0);
  // A route change bumps the version; the next packet stamps it.
  net.switch_at(0).set_route(net.host_id(1), {1});
  net.host(0).send(net.host_id(1), 1, 100);
  net.run_for(sim::msec(1));
  EXPECT_EQ(net.switch_at(0)
                .counters(0, net::Direction::Ingress)
                .read(sw::MetricKind::ForwardingVersion),
            v0 + 1);
}

TEST(SwitchSnapshot, QueueDepthGaugeReadable) {
  NetworkOptions opt;
  opt.metric = sw::MetricKind::QueueDepth;
  Network net(net::make_star(2), opt);
  EXPECT_EQ(net.switch_at(0)
                .counters(1, net::Direction::Egress)
                .read(sw::MetricKind::QueueDepth),
            0u);
}

TEST(SwitchCos, ClassifierSeparatesTraffic) {
  NetworkOptions opt;
  opt.cos_classes = 2;
  net::TopologySpec spec = net::make_star(2);
  // Flow 1 -> class 1 (low priority), flow 0 -> class 0.
  // Classifier set through switch options is applied per switch; configure
  // via NetworkOptions is not exposed, so verify the queue layer directly
  // plus end-to-end default behavior here.
  Network net(spec, opt);
  net.host(0).send(net.host_id(1), 0, 800);
  net.run_for(sim::msec(1));
  EXPECT_EQ(net.host(1).packets_received(), 1u);
}

}  // namespace
}  // namespace speedlight
