// SimulatorStats accounting: scheduled / executed / cancelled /
// clamped_schedules, including the silent past-time clamp, plus the
// counters' surface through the metrics registry.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace speedlight {
namespace {

TEST(SimulatorStats, CountsScheduledAndExecuted) {
  sim::Simulator sim;
  int ran = 0;
  sim.at(sim::usec(1), [&ran]() { ++ran; });
  sim.at(sim::usec(2), [&ran]() { ++ran; });
  sim.after(sim::usec(3), [&ran]() { ++ran; });
  EXPECT_EQ(sim.stats().scheduled, 3u);
  EXPECT_EQ(sim.stats().executed, 0u);

  sim.run_until(sim::sec(1));
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(sim.stats().scheduled, 3u);
  EXPECT_EQ(sim.stats().executed, 3u);
  EXPECT_EQ(sim.stats().cancelled, 0u);
  EXPECT_EQ(sim.stats().clamped_schedules, 0u);
}

TEST(SimulatorStats, CountsCancellations) {
  sim::Simulator sim;
  int ran = 0;
  const sim::EventId a = sim.at(sim::usec(1), [&ran]() { ++ran; });
  sim.at(sim::usec(2), [&ran]() { ++ran; });

  EXPECT_TRUE(sim.cancel(a));
  EXPECT_EQ(sim.stats().cancelled, 1u);
  // Cancelling twice fails and must not double-count.
  EXPECT_FALSE(sim.cancel(a));
  EXPECT_EQ(sim.stats().cancelled, 1u);

  sim.run_until(sim::sec(1));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.stats().scheduled, 2u);
  EXPECT_EQ(sim.stats().executed, 1u);
}

TEST(SimulatorStats, ClampsPastTimeSchedulesToNow) {
  sim::Simulator sim;
  sim::SimTime clamped_ran_at = -1;
  sim.at(sim::usec(10), [&sim, &clamped_ran_at]() {
    // now == 10us; schedule into the past. The event must still run, at the
    // current time, and the clamp must be accounted.
    sim.at(sim::usec(3), [&sim, &clamped_ran_at]() {
      clamped_ran_at = sim.now();
    });
  });
  sim.run_until(sim::sec(1));
  EXPECT_EQ(clamped_ran_at, sim::usec(10));
  EXPECT_EQ(sim.stats().scheduled, 2u);
  EXPECT_EQ(sim.stats().executed, 2u);
  EXPECT_EQ(sim.stats().clamped_schedules, 1u);
}

TEST(SimulatorStats, NegativeRelativeDelaysClamp) {
  sim::Simulator sim;
  sim.at(sim::usec(5), [&sim]() {
    sim.after(-sim::usec(2), []() {});  // negative delay -> now
  });
  sim.run_until(sim::sec(1));
  EXPECT_EQ(sim.stats().clamped_schedules, 1u);
  EXPECT_EQ(sim.stats().executed, 2u);
}

TEST(SimulatorStats, SurfacedThroughMetricsRegistry) {
  sim::Simulator sim;
  sim.at(sim::usec(1), []() {});
  const sim::EventId b = sim.at(sim::usec(2), []() {});
  sim.cancel(b);
  sim.run_until(sim::sec(1));

  const auto samples = sim.metrics().collect();
  auto value_of = [&samples](const std::string& name) -> std::uint64_t {
    for (const auto& s : samples) {
      if (s.name == name) return s.value;
    }
    ADD_FAILURE() << "metric not found: " << name;
    return 0;
  };
  EXPECT_EQ(value_of("sim.events.scheduled"), 2u);
  EXPECT_EQ(value_of("sim.events.executed"), 1u);
  EXPECT_EQ(value_of("sim.events.cancelled"), 1u);
  EXPECT_EQ(value_of("sim.events.clamped_schedules"), 0u);
  EXPECT_EQ(value_of("sim.events.pending"), 0u);
}

}  // namespace
}  // namespace speedlight
