// Flight recorder tests: the trace ring, the metrics registry, the Chrome
// trace-event export (schema-checked with a standalone JSON parser), and
// per-snapshot causal timeline reconstruction on a live network.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "net/topology.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "workload/basic.hpp"

namespace speedlight {
namespace {

// ---------------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------------

TEST(Tracer, DisabledByDefaultAndRecordsNothing) {
  obs::Tracer tr;
  EXPECT_FALSE(tr.enabled());
  tr.instant(obs::Category::Sim, obs::EventName::PktSeen, 0, 10);
  EXPECT_EQ(tr.size(), 0u);
}

TEST(Tracer, RecordsInstantsAndSpans) {
  if (!obs::Tracer::compiled_in()) GTEST_SKIP() << "trace layer compiled out";
  obs::Tracer tr;
  tr.enable(16);
  tr.instant(obs::Category::SnapshotSm, obs::EventName::SnapCapture,
             obs::unit_track({3, 1, net::Direction::Ingress}), 100, 7, 8);
  tr.complete(obs::Category::NotifChannel, obs::EventName::NotifService,
              obs::notif_track(3), 200, 50, 7);
  ASSERT_EQ(tr.size(), 2u);

  std::vector<obs::TraceEvent> events;
  tr.for_each([&events](const obs::TraceEvent& e) { events.push_back(e); });
  EXPECT_EQ(events[0].ts, 100);
  EXPECT_EQ(events[0].dur, 0);  // instant
  EXPECT_EQ(events[0].a0, 7u);
  EXPECT_EQ(events[1].dur, 50);  // span
  EXPECT_EQ(obs::track_pid(events[1].track), 3u);
  EXPECT_EQ(obs::track_tid(events[1].track), 1u);  // notif lane
}

TEST(Tracer, RingOverwritesOldestWhenFull) {
  if (!obs::Tracer::compiled_in()) GTEST_SKIP() << "trace layer compiled out";
  obs::Tracer tr;
  tr.enable(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    tr.instant(obs::Category::Sim, obs::EventName::PktSeen, 0,
               static_cast<sim::SimTime>(i), i);
  }
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.overwritten(), 6u);
  std::vector<std::uint64_t> kept;
  tr.for_each([&kept](const obs::TraceEvent& e) { kept.push_back(e.a0); });
  EXPECT_EQ(kept, (std::vector<std::uint64_t>{6, 7, 8, 9}));
}

TEST(Tracer, UnitKeyRoundTrips) {
  const net::UnitId u{5, 12, net::Direction::Egress};
  EXPECT_EQ(obs::unpack_unit(obs::pack_unit(u)), u);
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, ReadersReflectLiveValuesAndClashesGetSuffixed) {
  obs::MetricsRegistry reg;
  std::uint64_t counter = 0;
  const std::string a =
      reg.register_reader("x.count", obs::MetricKind::Counter,
                          [&counter] { return counter; });
  const std::string b = reg.register_reader(
      "x.count", obs::MetricKind::Counter, [] { return std::uint64_t{42}; });
  EXPECT_EQ(a, "x.count");
  EXPECT_EQ(b, "x.count#2");  // second registrant of the name

  counter = 9;
  const auto samples = reg.collect();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "x.count");
  EXPECT_EQ(samples[0].value, 9u);
  EXPECT_EQ(samples[1].value, 42u);
}

TEST(MetricsRegistry, HistogramPercentilesAndFlattening) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat");
  EXPECT_EQ(&h, &reg.histogram("lat"));  // stable get-or-create
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.mean(), 500.5, 0.001);
  // Log2 buckets: percentile() returns an upper bound for the bucket.
  EXPECT_GE(h.percentile(0.5), 500u);
  EXPECT_LE(h.percentile(0.5), 1024u);
  EXPECT_GE(h.percentile(0.99), 990u);

  const auto samples = reg.collect();
  std::vector<std::string> names;
  for (const auto& s : samples) names.push_back(s.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "lat.count"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "lat.p99"), names.end());
}

TEST(MetricsRegistry, HistogramPercentilesNeverExceedObservedRange) {
  // Regression: a log2 bucket's upper bound can sit up to 2x above every
  // sample in it, so an unclamped percentile() reported impossible values
  // (fig10 registry dumps showed p50 > max). Percentiles must stay within
  // the observed [min, max] for any sample distribution.
  obs::Histogram h;
  // All mass in one bucket, far from its upper bound: [2^23, 2^24) holds
  // 14673982, but the bucket bound is 16777216.
  h.record(14673982);
  h.record(14673982);
  h.record(9000000);
  for (const double p : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_GE(h.percentile(p), h.min()) << "p=" << p;
    EXPECT_LE(h.percentile(p), h.max()) << "p=" << p;
  }
  EXPECT_EQ(h.max(), 14673982u);
  EXPECT_EQ(h.percentile(0.5), 14673982u);  // Clamped bucket bound.

  // Single-sample histograms collapse every percentile to that sample.
  obs::Histogram one;
  one.record(12345);
  EXPECT_EQ(one.percentile(0.5), 12345u);
  EXPECT_EQ(one.percentile(0.99), 12345u);
}

// ---------------------------------------------------------------------------
// Chrome trace-event export: schema-checked with a minimal JSON parser.
// ---------------------------------------------------------------------------

/// A tiny recursive-descent JSON well-formedness checker (no values kept).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    for (const char* c = lit; *c != '\0'; ++c, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *c) return false;
    }
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(ChromeTrace, EmptyTracerExportsValidJson) {
  obs::Tracer tr;
  std::ostringstream os;
  obs::write_chrome_trace(os, tr);
  const std::string out = os.str();
  EXPECT_TRUE(JsonChecker(out).valid()) << out;
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"displayTimeUnit\": \"ns\""), std::string::npos);
}

TEST(ChromeTrace, MultiTracerMergeIsSortedAndDeterministic) {
  if (!obs::Tracer::compiled_in()) GTEST_SKIP() << "trace layer compiled out";
  // Two tracers with interleaved, partially-equal timestamps. The export
  // must order events by (ts, tracer index, ring position) — a total,
  // input-order-independent key — so threaded runs produce one canonical
  // byte stream.
  obs::Tracer a;
  obs::Tracer b;
  a.enable(8);
  b.enable(8);
  a.instant(obs::Category::Engine, obs::EventName::EngWindow, 1, 30, 0, 0);
  a.instant(obs::Category::Engine, obs::EventName::EngWindow, 1, 10, 1, 0);
  b.instant(obs::Category::Engine, obs::EventName::EngStallPeer, 2, 10, 3, 0);
  b.instant(obs::Category::Engine, obs::EventName::EngStallPeer, 2, 10, 2, 0);

  std::ostringstream os;
  obs::write_chrome_trace(os, {&a, &b});
  const std::string out = os.str();
  ASSERT_TRUE(JsonChecker(out).valid()) << out;
  // Expected order by (ts, tracer, seq): a@10, b@10(first), b@10(second),
  // a@30 — readable off the a0 payloads (1, 3, 2, 0). Tracer index breaks
  // the a/b tie at ts=10; ring position orders b's equal-ts pair.
  std::vector<std::uint64_t> a0s;
  for (std::size_t p = out.find("\"a0\": "); p != std::string::npos;
       p = out.find("\"a0\": ", p + 1)) {
    a0s.push_back(std::strtoull(out.c_str() + p + 6, nullptr, 10));
  }
  EXPECT_EQ(a0s, (std::vector<std::uint64_t>{1, 3, 2, 0}));

  // Listing the tracers in the other order moves b's pair ahead of a's
  // equal-ts event — the tracer index is part of the key, so the stream
  // is a function of (events, tracer order), nothing else.
  std::ostringstream os2;
  obs::write_chrome_trace(os2, {&b, &a});
  EXPECT_NE(os2.str(), out);
  std::ostringstream os3;
  obs::write_chrome_trace(os3, {&a, &b});
  EXPECT_EQ(os3.str(), out);  // Re-export is bit-stable.
}

TEST(ChromeTrace, LiveNetworkExportMatchesSchema) {
  if (!obs::Tracer::compiled_in()) GTEST_SKIP() << "trace layer compiled out";
  core::NetworkOptions opt;
  opt.snapshot.channel_state = true;
  core::Network net(net::make_leaf_spine(2, 2, 2), opt);
  net.enable_tracing();

  std::vector<std::unique_ptr<wl::Generator>> gens;
  for (std::size_t h = 0; h < net.num_hosts(); ++h) {
    auto g = std::make_unique<wl::PoissonGenerator>(
        net.simulator(), net.host(h),
        std::vector<net::NodeId>{net.host_id((h + 1) % net.num_hosts())},
        20000.0, 1000, sim::Rng(77 + h));
    g->start(net.now());
    gens.push_back(std::move(g));
  }
  const auto* snap = net.take_snapshot(sim::msec(1));
  ASSERT_NE(snap, nullptr);
  ASSERT_TRUE(snap->complete);

  std::ostringstream os;
  obs::write_chrome_trace(os, net.tracer());
  const std::string out = os.str();
  ASSERT_TRUE(JsonChecker(out).valid());

  // Schema spot checks: the documented phases, metadata, and arg names.
  EXPECT_NE(out.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"process_name\""), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"thread_name\""), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"snap.capture\""), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"cp.initiate\""), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"obs.complete\""), std::string::npos);
  EXPECT_NE(out.find("\"cat\": \"snapshot-state-machine\""), std::string::npos);
  EXPECT_NE(out.find("\"args\": {\"a0\":"), std::string::npos);

  // And the file-based exporter produces the same bytes.
  const std::string path = ::testing::TempDir() + "obs_test_trace.json";
  ASSERT_TRUE(net.export_chrome_trace(path));
  std::ifstream in(path);
  std::stringstream file;
  file << in.rdbuf();
  EXPECT_EQ(file.str(), out);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Snapshot timelines
// ---------------------------------------------------------------------------

TEST(SnapshotTimeline, CausalOrderingHoldsOnALiveNetwork) {
  if (!obs::Tracer::compiled_in()) GTEST_SKIP() << "trace layer compiled out";
  core::NetworkOptions opt;
  opt.snapshot.channel_state = true;
  core::Network net(net::make_leaf_spine(2, 2, 2), opt);
  net.enable_tracing();

  std::vector<std::unique_ptr<wl::Generator>> gens;
  for (std::size_t h = 0; h < net.num_hosts(); ++h) {
    auto g = std::make_unique<wl::PoissonGenerator>(
        net.simulator(), net.host(h),
        std::vector<net::NodeId>{net.host_id((h + 1) % net.num_hosts())},
        20000.0, 1000, sim::Rng(177 + h));
    g->start(net.now());
    gens.push_back(std::move(g));
  }
  const auto* snap = net.take_snapshot(sim::msec(1));
  ASSERT_NE(snap, nullptr);
  ASSERT_TRUE(snap->complete);
  ASSERT_TRUE(snap->excluded_devices.empty());

  const obs::SnapshotTimeline tl = net.snapshot_timeline(snap->id);
  EXPECT_EQ(tl.sid, snap->id);
  EXPECT_NE(tl.initiated, obs::SnapshotTimeline::kUnset);
  EXPECT_NE(tl.completed, obs::SnapshotTimeline::kUnset);

  // Every unit the observer collected must appear, causally ordered:
  // initiation <= capture <= notify <= cpu_process <= collect.
  EXPECT_EQ(tl.units.size(), snap->reports.size());
  EXPECT_TRUE(tl.causally_ordered());
  for (const auto& u : tl.units) {
    EXPECT_TRUE(u.causally_ordered())
        << "unit " << u.unit.node << "/" << u.unit.port;
    EXPECT_NE(u.collect, obs::UnitTimeline::kUnset);
  }
  EXPECT_GT(tl.complete_units(), 0u);

  // Skews and latencies are computable and sane.
  EXPECT_GE(tl.capture_skew(), 0);
  EXPECT_GE(tl.collect_skew(), 0);
  EXPECT_GE(tl.mean_notify_to_cpu(), 0.0);
  EXPECT_GE(tl.end_to_end(), 0);
  EXPECT_LE(tl.initiated, tl.completed);
}

TEST(SnapshotTimeline, UnknownSidYieldsEmptyTimeline) {
  obs::Tracer tr;
  const obs::SnapshotTimeline tl = obs::SnapshotTimeline::build(tr, 99);
  EXPECT_EQ(tl.units.size(), 0u);
  EXPECT_EQ(tl.initiated, obs::SnapshotTimeline::kUnset);
  EXPECT_TRUE(tl.causally_ordered());  // vacuously
}

// ---------------------------------------------------------------------------
// Registry on a live network
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, LiveNetworkRegistersAllSubsystems) {
  core::NetworkOptions opt;
  core::Network net(net::make_line(2), opt);
  net.take_snapshot(sim::msec(1));

  const auto samples = net.metrics().collect();
  auto has = [&samples](const std::string& name) {
    for (const auto& s : samples) {
      if (s.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("sim.events.scheduled"));
  EXPECT_TRUE(has("sim.events.executed"));
  EXPECT_TRUE(has("observer.requested"));
  EXPECT_TRUE(has("observer.completed"));
  EXPECT_TRUE(has("polling.sweeps"));
  EXPECT_TRUE(has("switch.s0.queue_drops"));
  EXPECT_TRUE(has("switch.s0.notif.delivered"));
  EXPECT_TRUE(has("switch.s0.notif.max_backlog"));
  EXPECT_TRUE(has("switch.s0.snap.captures"));
  EXPECT_TRUE(has("cp.s0.initiations_sent"));
  EXPECT_TRUE(has("observer.completion_latency_ns.count"));

  std::ostringstream os;
  net.metrics().write_json(os);
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

}  // namespace
}  // namespace speedlight
