// tools/benchdiff: gate-spec parsing, JSON flattening, and regression
// verdicts. The CLI is a thin wrapper over this library, so the exit-code
// contract (0 hold / 1 regress / 2 malformed) reduces to these cases.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "benchdiff/benchdiff.hpp"

namespace speedlight::benchdiff {
namespace {

using Flat = std::map<std::string, double>;

TEST(BenchdiffGate, ParsesTheThreeSpecShapes) {
  Gate g;
  ASSERT_TRUE(parse_gate("metrics.rounds:+2%", g));
  EXPECT_EQ(g.path, "metrics.rounds");
  EXPECT_TRUE(g.higher_is_worse);
  EXPECT_TRUE(g.relative);
  EXPECT_DOUBLE_EQ(g.tolerance, 2.0);

  ASSERT_TRUE(parse_gate("metrics.speedup:-10%", g));
  EXPECT_FALSE(g.higher_is_worse);
  EXPECT_TRUE(g.relative);
  EXPECT_DOUBLE_EQ(g.tolerance, 10.0);

  ASSERT_TRUE(parse_gate("checks_failed:+0", g));
  EXPECT_TRUE(g.higher_is_worse);
  EXPECT_FALSE(g.relative);
  EXPECT_DOUBLE_EQ(g.tolerance, 0.0);

  // Absolute slack, and a path containing a colon-free dotted array index.
  ASSERT_TRUE(parse_gate("profile.fabric.stalls:+5", g));
  EXPECT_FALSE(g.relative);
  EXPECT_DOUBLE_EQ(g.tolerance, 5.0);
}

TEST(BenchdiffGate, RejectsMalformedSpecs) {
  Gate g;
  for (const char* bad :
       {"metrics.rounds", "metrics.rounds:", "metrics.rounds:2%",
        "metrics.rounds:+", "metrics.rounds:+x%", ":+2%",
        "metrics.rounds:+-3", "metrics.rounds:+2%%"}) {
    EXPECT_FALSE(parse_gate(bad, g)) << bad;
  }
}

TEST(BenchdiffFlatten, DottedPathsBoolsAndArrays) {
  Flat flat;
  ASSERT_TRUE(flatten_json(
      R"({"a": 1, "b": {"c": 2.5, "d": [10, 20, {"e": -3e2}]},
          "s": "skip me", "t": true, "f": false, "n": null})",
      flat));
  EXPECT_DOUBLE_EQ(flat.at("a"), 1);
  EXPECT_DOUBLE_EQ(flat.at("b.c"), 2.5);
  EXPECT_DOUBLE_EQ(flat.at("b.d.0"), 10);
  EXPECT_DOUBLE_EQ(flat.at("b.d.1"), 20);
  EXPECT_DOUBLE_EQ(flat.at("b.d.2.e"), -300);
  EXPECT_DOUBLE_EQ(flat.at("t"), 1);
  EXPECT_DOUBLE_EQ(flat.at("f"), 0);
  EXPECT_EQ(flat.count("s"), 0u);  // Strings carry no numeric value.
  EXPECT_EQ(flat.count("n"), 0u);
  EXPECT_EQ(flat.size(), 7u);
}

TEST(BenchdiffFlatten, AcceptsTheBenchWriterOutput) {
  // Shape emitted by bench_common.hpp (v2 schema with profile + registry).
  Flat flat;
  ASSERT_TRUE(flatten_json(
      R"({
  "bench": "perf_parallel",
  "schema": "speedlight-bench-v2",
  "wall_time_s": 1.5,
  "checks_passed": 21,
  "checks_failed": 0,
  "metrics": {
    "rounds": 2377,
    "rounds_scenario": "twosite.shards2.inline"
  },
  "profile": {
    "fabric": {"stalls": 262428, "stall_matrix": [[0, 1], [2, 0]]}
  },
  "registry": {}
})",
      flat));
  EXPECT_DOUBLE_EQ(flat.at("checks_failed"), 0);
  EXPECT_DOUBLE_EQ(flat.at("metrics.rounds"), 2377);
  EXPECT_DOUBLE_EQ(flat.at("profile.fabric.stalls"), 262428);
  EXPECT_DOUBLE_EQ(flat.at("profile.fabric.stall_matrix.1.0"), 2);
}

TEST(BenchdiffFlatten, RejectsMalformedJson) {
  Flat flat;
  std::string err;
  EXPECT_FALSE(flatten_json("{\"a\": }", flat, &err));
  EXPECT_NE(err, "");
  EXPECT_FALSE(flatten_json("{\"a\": 1", flat));
  EXPECT_FALSE(flatten_json("{\"a\": 1} trailing", flat));
  EXPECT_FALSE(flatten_json("", flat));
}

Gate gate(const std::string& spec) {
  Gate g;
  EXPECT_TRUE(parse_gate(spec, g)) << spec;
  return g;
}

TEST(BenchdiffEvaluate, HigherIsWorseGuardsRisesOnly) {
  const Flat base{{"m", 100}};
  EXPECT_TRUE(evaluate(gate("m:+2%"), base, Flat{{"m", 102}}).ok);
  EXPECT_FALSE(evaluate(gate("m:+2%"), base, Flat{{"m", 102.1}}).ok);
  // Improvements never fail a '+' gate, however large.
  EXPECT_TRUE(evaluate(gate("m:+2%"), base, Flat{{"m", 1}}).ok);
}

TEST(BenchdiffEvaluate, LowerIsWorseGuardsFallsOnly) {
  const Flat base{{"m", 2.0}};
  EXPECT_TRUE(evaluate(gate("m:-10%"), base, Flat{{"m", 1.8}}).ok);
  EXPECT_FALSE(evaluate(gate("m:-10%"), base, Flat{{"m", 1.79}}).ok);
  EXPECT_TRUE(evaluate(gate("m:-10%"), base, Flat{{"m", 99}}).ok);
}

TEST(BenchdiffEvaluate, ZeroToleranceIsExactUpward) {
  const Flat base{{"checks_failed", 0}};
  EXPECT_TRUE(evaluate(gate("checks_failed:+0"), base,
                       Flat{{"checks_failed", 0}})
                  .ok);
  EXPECT_FALSE(evaluate(gate("checks_failed:+0"), base,
                        Flat{{"checks_failed", 1}})
                   .ok);
}

TEST(BenchdiffEvaluate, MissingGatedPathFails) {
  const Flat has{{"m", 1}};
  const Flat empty;
  GateResult r = evaluate(gate("m:+2%"), empty, has);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.missing);
  r = evaluate(gate("m:+2%"), has, empty);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.missing);
}

TEST(BenchdiffDiff, CountsFailuresAndReportsEveryGate) {
  const Flat base{{"a", 100}, {"b", 2.0}};
  const Flat fresh{{"a", 110}, {"b", 2.0}};
  std::ostringstream os;
  const std::size_t failed =
      diff(base, fresh, {gate("a:+2%"), gate("b:-10%")}, os);
  EXPECT_EQ(failed, 1u);
  EXPECT_NE(os.str().find("[FAIL] a"), std::string::npos);
  EXPECT_NE(os.str().find("[OK]   b"), std::string::npos);
}

}  // namespace
}  // namespace speedlight::benchdiff
