// Snapshot observer: assembly, spans, totals, timeouts, and rollover
// enforcement, on small real networks.
#include <gtest/gtest.h>

#include "core/network.hpp"
#include "net/topology.hpp"
#include "workload/basic.hpp"

namespace speedlight {
namespace {

using core::Network;
using core::NetworkOptions;

TEST(Observer, AssemblesAllUnits) {
  Network net(net::make_star(3), NetworkOptions{});
  const auto* snap = net.take_snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->complete);
  EXPECT_EQ(snap->reports.size(), 6u);  // 3 ports x 2 directions.
  EXPECT_EQ(snap->id, 1u);
}

TEST(Observer, SequentialIdsAssigned) {
  Network net(net::make_star(2), NetworkOptions{});
  const auto a = net.observer().request_snapshot(net.now() + sim::msec(1));
  const auto b = net.observer().request_snapshot(net.now() + sim::msec(2));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a + 1, *b);
}

TEST(Observer, CompletionCallbackFires) {
  Network net(net::make_star(2), NetworkOptions{});
  std::vector<snap::VirtualSid> completed;
  net.observer().set_completion_callback(
      [&](const snap::GlobalSnapshot& s) { completed.push_back(s.id); });
  net.take_snapshot();
  net.take_snapshot();
  EXPECT_EQ(completed, (std::vector<snap::VirtualSid>{1, 2}));
  EXPECT_EQ(net.observer().completed_count(), 2u);
  EXPECT_EQ(net.observer().requested_count(), 2u);
}

TEST(Observer, TotalValueSumsConsistentReports) {
  Network net(net::make_star(2), NetworkOptions{});
  // 5 packets host0 -> host1: counted at ingress 0 and egress 1 only.
  for (int i = 0; i < 5; ++i) net.host(0).send(net.host_id(1), 1, 100);
  net.run_for(sim::msec(1));
  const auto* snap = net.take_snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->total_value(false), 10u);  // 5 at ingress + 5 at egress.
}

TEST(Observer, AdvanceSpanPositiveAndBounded) {
  Network net(net::make_leaf_spine(2, 2, 3), NetworkOptions{});
  const auto* snap = net.take_snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_GT(snap->advance_span(), 0);
  EXPECT_LT(snap->advance_span(), sim::usec(100));
  EXPECT_GE(snap->finalize_span(), 0);
}

TEST(Observer, ResultForUnknownIdIsNull) {
  Network net(net::make_star(2), NetworkOptions{});
  EXPECT_EQ(net.observer().result(999), nullptr);
}

TEST(Observer, RolloverWindowRecoversAfterCompletion) {
  NetworkOptions opt;
  opt.snapshot.wire_id_modulus = 8;  // No-CS window = 3.
  Network net(net::make_star(2), opt);
  // Fill the window, let them complete, then more must be accepted.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(net.take_snapshot() != nullptr);
  }
  const auto id = net.observer().request_snapshot(net.now() + sim::msec(1));
  EXPECT_TRUE(id.has_value());
  EXPECT_EQ(*id, 4u);
}

TEST(Observer, ChannelStateSnapshotHasChannelValues) {
  NetworkOptions opt;
  opt.snapshot.channel_state = true;
  Network net(net::make_line(2), opt);
  // Keep a steady stream so in-flight packets exist at snapshot time.
  wl::CbrGenerator gen(net.simulator(), net.host(0), net.host_id(1), 1,
                       8e9, 1500);
  gen.start(net.now());
  net.run_for(sim::msec(2));
  const auto* snap = net.take_snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->complete);
  // At 8Gbps over a 100G trunk the wire is often occupied; channel state is
  // at least well-defined (>= 0) and the totals line up.
  EXPECT_GE(snap->total_value(true), snap->total_value(false));
  gen.stop();
}

}  // namespace
}  // namespace speedlight
