// Unit tests for the discrete-event core: event queue, simulator, RNG, and
// local clocks.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "sim/timing_model.hpp"

namespace speedlight::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(42, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ReportsNextTime) {
  EventQueue q;
  q.schedule(100, [] {});
  q.schedule(50, [] {});
  EXPECT_EQ(q.next_time(), 50);
  q.pop();
  EXPECT_EQ(q.next_time(), 100);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.cancel(id));  // Second cancel is a no-op.
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelledEventsSkippedInPop) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(10, [&] { order.push_back(1); });
  const EventId id = q.schedule(20, [&] { order.push_back(2); });
  q.schedule(30, [&] { order.push_back(3); });
  q.cancel(id);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, StaleEntriesNeverLeak) {
  // Regression for the seed implementation's unbounded growth: cancelled
  // events stayed in the heap until they surfaced at the top, so a
  // periodically re-armed timer (the snapshot re-initiation pattern) grew
  // the heap by one entry per re-arm, forever. The slab queue compacts
  // whenever stale entries exceed half the heap, pinning heap size to at
  // most live events x 2.
  EventQueue q;
  EventId pending = q.schedule(1'000'000, [] {});
  for (int i = 0; i < 100'000; ++i) {
    const EventId fresh = q.schedule(1'000'000 + i, [] {});
    EXPECT_TRUE(q.cancel(pending));
    pending = fresh;
    ASSERT_LE(q.heap_entries(), 2 * q.size());
  }
  EXPECT_EQ(q.size(), 1u);
  EXPECT_LE(q.heap_entries(), 2u);
  EXPECT_GT(q.compactions(), 0u);
  // The slab itself also stays O(live): slots recycle through the freelist.
  EXPECT_LE(q.slab_slots(), 4u);
}

TEST(EventQueue, EventIdsAreNeverReusedOrZero) {
  EventQueue q;
  // kInvalidEvent (0) is the "no event" sentinel used across the codebase
  // (e.g. digest flush timers); cancelling it must always be a safe no-op.
  EXPECT_FALSE(q.cancel(kInvalidEvent));
  std::vector<EventId> seen;
  for (int round = 0; round < 1000; ++round) {
    const EventId id = q.schedule(round, [] {});
    EXPECT_NE(id, kInvalidEvent);
    for (const EventId old : seen) EXPECT_NE(id, old);
    seen.push_back(id);
    q.cancel(id);  // Recycles the slot; the next id must still be fresh.
  }
}

TEST(InplaceCallback, StoresMoveOnlyCapturesInline) {
  auto payload = std::make_unique<int>(41);
  InplaceCallback cb = [p = std::move(payload)]() mutable { ++*p; };
  static_assert(
      InplaceCallback::fits_inline<decltype([p = std::unique_ptr<int>()] {})>);
  EXPECT_TRUE(static_cast<bool>(cb));
  InplaceCallback moved = std::move(cb);
  moved();
  EXPECT_FALSE(static_cast<bool>(cb));  // NOLINT: moved-from is empty
}

TEST(InplaceCallback, LargeCapturesFallBackToHeap) {
  struct Big {
    std::array<std::uint64_t, 32> data{};  // 256 bytes: beyond the buffer.
  };
  Big big;
  big.data[7] = 123;
  std::uint64_t out = 0;
  auto fn = [big, &out] { out = big.data[7]; };
  static_assert(!InplaceCallback::fits_inline<decltype(fn)>);
  InplaceCallback cb = std::move(fn);
  InplaceCallback moved = std::move(cb);
  moved();
  EXPECT_EQ(out, 123u);
}

TEST(InplaceCallback, ResetDestroysCapture) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  InplaceCallback cb = [token = std::move(token)] {};
  EXPECT_FALSE(watch.expired());
  cb.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(Simulator, StatsCountersTrackLifecycle) {
  Simulator sim;
  int ran = 0;
  sim.at(10, [&] { ++ran; });
  const EventId doomed = sim.at(20, [&] { ++ran; });
  sim.at(30, [&] {
    ++ran;
    sim.at(5, [&] { ++ran; });  // Past time: clamped to now.
  });
  EXPECT_TRUE(sim.cancel(doomed));
  EXPECT_FALSE(sim.cancel(doomed));  // No-op does not double count.
  sim.run_until(100);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(sim.stats().scheduled, 4u);
  EXPECT_EQ(sim.stats().executed, 3u);
  EXPECT_EQ(sim.stats().cancelled, 1u);
  EXPECT_EQ(sim.stats().clamped_schedules, 1u);
}

TEST(Simulator, RunUntilAdvancesTime) {
  Simulator sim;
  int count = 0;
  sim.at(100, [&] { ++count; });
  sim.at(200, [&] { ++count; });
  sim.at(300, [&] { ++count; });
  EXPECT_EQ(sim.run_until(250), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 250);  // Horizon reached even without events there.
  sim.run_until(1000);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.at(10, [&] {
    times.push_back(sim.now());
    sim.after(5, [&] { times.push_back(sim.now()); });
  });
  sim.run_until(100);
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator sim;
  sim.at(100, [&] {
    sim.at(50, [&] { EXPECT_EQ(sim.now(), 100); });
    sim.after(-10, [&] { EXPECT_EQ(sim.now(), 100); });
  });
  EXPECT_EQ(sim.run_until(200), 3u);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.at(1, [&] { ++count; });
  sim.at(2, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Rng, Deterministic) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(5.0, 9.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 9.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.uniform_int(9, 9), 9u);
}

TEST(Rng, ChanceEdges) {
  Rng rng(7);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, NormalMoments) {
  Rng rng(99);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, ParetoBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, ForkedStreamsIndependent) {
  Rng parent(42);
  Rng a = parent.fork("alpha");
  Rng b = parent.fork("beta");
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NamedForksStableAcrossRuns) {
  Rng p1(42);
  Rng p2(42);
  Rng a1 = p1.fork("component");
  Rng a2 = p2.fork("component");
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a1(), a2());
}

TEST(LocalClock, OffsetAndDrift) {
  LocalClock clock(usec(5), 100.0);  // 100 ppm fast
  EXPECT_EQ(clock.local_time(0), usec(5));
  // After 1 second true time: offset grew by 100us.
  EXPECT_NEAR(static_cast<double>(clock.offset_at(sec(1.0))),
              static_cast<double>(usec(105)), 10.0);
}

TEST(LocalClock, TrueTimeForLocalInverts) {
  LocalClock clock(usec(17), -42.0);
  const SimTime local = sec(3.0);
  const SimTime t = clock.true_time_for_local(local);
  EXPECT_NEAR(static_cast<double>(clock.local_time(t)),
              static_cast<double>(local), 2.0);
}

TEST(LocalClock, SynchronizeResetsOffset) {
  LocalClock clock(msec(1), 200.0);
  clock.synchronize(sec(1.0), nsec(500), 1.0);
  EXPECT_EQ(clock.offset_at(sec(1.0)), nsec(500));
  EXPECT_NEAR(static_cast<double>(clock.offset_at(sec(2.0))),
              500.0 + 1000.0, 2.0);  // 1 ppm over 1s = 1us
}

TEST(TimingModel, SamplersInPlausibleRanges) {
  TimingModel tm;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const Duration j = tm.sample_sched_jitter(rng);
    EXPECT_GT(j, 0);
    EXPECT_LT(j, msec(1));  // Long tail but not absurd.
    const Duration p = tm.sample_poll_latency(rng);
    EXPECT_GT(p, usec(10));
    EXPECT_LT(p, msec(5));
  }
}

TEST(TimingModel, PollLatencyMedianNear95us) {
  TimingModel tm;
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 5001; ++i) {
    xs.push_back(static_cast<double>(tm.sample_poll_latency(rng)));
  }
  std::nth_element(xs.begin(), xs.begin() + 2500, xs.end());
  EXPECT_NEAR(xs[2500] / 1000.0, 95.0, 10.0);  // microseconds
}

}  // namespace
}  // namespace speedlight::sim
