// Packet trace recorder and log-bucketed histogram.
#include <gtest/gtest.h>

#include <sstream>

#include "core/network.hpp"
#include "net/topology.hpp"
#include "net/trace.hpp"
#include "stats/histogram.hpp"

namespace speedlight {
namespace {

TEST(PacketTrace, RecordsWithFilterAndEviction) {
  net::PacketTrace trace(3);
  trace.set_filter([](const net::Packet& p) { return p.flow == 7; });
  for (std::uint64_t i = 0; i < 10; ++i) {
    net::Packet p;
    p.id = i;
    p.flow = i % 2 == 0 ? 7 : 8;
    trace.record(p, static_cast<sim::SimTime>(i * 100));
  }
  EXPECT_EQ(trace.seen(), 10u);
  EXPECT_EQ(trace.size(), 3u);        // Capacity bound.
  EXPECT_EQ(trace.evicted(), 2u);     // 5 matched, 2 evicted.
  // Newest matching records kept (ids 4, 6, 8).
  EXPECT_EQ(trace.records()[0].packet_id, 4u);
  EXPECT_EQ(trace.records()[2].packet_id, 8u);
  for (const auto& r : trace.records()) EXPECT_EQ(r.flow, 7u);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.seen(), 0u);
}

TEST(PacketTrace, CapturesMarkersOnALiveLink) {
  core::NetworkOptions opt;
  core::Network net(net::make_line(2), opt);
  net::PacketTrace trace;
  // The trunk link s0->s1 is links_[...]; reach it via a switch-side tap
  // instead: attach to the host downlink of h1 would see stripped headers.
  // Use the audit hook to record in-fabric packets with headers intact.
  struct TraceAudit final : sw::SwitchAudit {
    net::PacketTrace* trace;
    void on_external_send(net::NodeId, net::PortId, std::uint64_t,
                          bool) override {}
  };
  // Simpler: send packets and verify via direct record() calls above; here
  // verify dump() formatting with snapshot headers.
  net::Packet p;
  p.id = 1;
  p.src_host = 2;
  p.dst_host = 3;
  p.size_bytes = 1500;
  p.snap.present = true;
  p.snap.kind = net::PacketKind::Initiation;
  p.snap.wire_sid = 9;
  trace.record(p, sim::usec(5));
  std::ostringstream os;
  trace.dump(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("init"), std::string::npos);
  EXPECT_NE(out.find("2->3"), std::string::npos);
  EXPECT_NE(out.find("9"), std::string::npos);
}

TEST(LogHistogram, BucketsAndQuantiles) {
  stats::LogHistogram h;
  for (int i = 0; i < 900; ++i) h.add(100.0);   // ~1e2
  for (int i = 0; i < 100; ++i) h.add(1e6);     // tail
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 100.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e6);
  // Median bucket's upper edge is within one bucket of 100.
  EXPECT_LE(h.quantile(0.5), 200.0);
  EXPECT_GE(h.quantile(0.5), 100.0);
  // p99 lands in the 1e6 bucket region.
  EXPECT_GE(h.quantile(0.995), 5e5);
  EXPECT_NEAR(h.mean(), (900 * 100.0 + 100 * 1e6) / 1000.0, 1.0);
}

TEST(LogHistogram, EdgeValues) {
  stats::LogHistogram h;
  h.add(0.0);      // Clamps into the first bucket.
  h.add(-5.0);     // Likewise.
  h.add(1e30);     // Saturates the last bucket.
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(stats::LogHistogram::kBuckets - 1), 1u);
}

TEST(LogHistogram, BucketMonotonicity) {
  // bucket_of is monotone and consistent with upper_edge.
  double prev_edge = 0.0;
  for (int b = 0; b < stats::LogHistogram::kBuckets; ++b) {
    const double edge = stats::LogHistogram::upper_edge(b);
    EXPECT_GT(edge, prev_edge);
    prev_edge = edge;
  }
  for (double x : {1.5, 10.0, 123.0, 9999.0, 1e7}) {
    const int b = stats::LogHistogram::bucket_of(x);
    EXPECT_LE(x, stats::LogHistogram::upper_edge(b) * 1.0000001) << x;
  }
}

TEST(LogHistogram, PrintsBars) {
  stats::LogHistogram h;
  for (int i = 0; i < 50; ++i) h.add(1000.0);
  std::ostringstream os;
  h.print(os, 1e-3, "us");
  EXPECT_NE(os.str().find('#'), std::string::npos);
  EXPECT_NE(os.str().find("50"), std::string::npos);
}

}  // namespace
}  // namespace speedlight
