// End-to-end coverage of the control-plane wire fast path (DESIGN.md
// section 16): with byte-charging disabled the v2 codecs must be fully
// transparent — a wire-fast-path run produces snapshot results identical
// to the legacy struct-shipping run, under either encoding — and with
// charging enabled the values (as opposed to the timings) are still exact.
// Also covers streaming digests vs retained reports, sync-group scoping,
// and observer restart across the wire session.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "net/topology.hpp"
#include "net/types.hpp"
#include "snapshot/observer.hpp"
#include "snapshot/wire.hpp"
#include "workload/basic.hpp"

namespace {

using namespace speedlight;
using core::Network;
using core::NetworkOptions;

NetworkOptions base_options() {
  NetworkOptions opt;
  opt.snapshot.channel_state = true;
  opt.metric = sw::MetricKind::PacketCount;
  return opt;
}

std::vector<std::unique_ptr<wl::Generator>> start_all_to_all(
    Network& net, std::uint64_t rate_pps = 50000) {
  std::vector<std::unique_ptr<wl::Generator>> gens;
  const std::size_t hosts = net.num_hosts();
  for (std::size_t h = 0; h < hosts; ++h) {
    std::vector<net::NodeId> dsts;
    for (std::size_t d = 0; d < hosts; ++d) {
      if (d != h) dsts.push_back(net.host_id(d));
    }
    gens.push_back(std::make_unique<wl::PoissonGenerator>(
        net.shard_simulator(net.host_shard(h)), net.host(h), dsts, rate_pps,
        1000, sim::Rng(1000 + h)));
    gens.back()->start(net.now());
  }
  return gens;
}

/// Everything we compare between runs, copied out of a GlobalSnapshot
/// (the snapshots die with their Network).
struct SnapSummary {
  bool complete = false;
  sim::SimTime completed_at = 0;
  std::size_t consistent = 0;
  std::uint64_t local_total = 0;
  std::uint64_t full_total = 0;
  sim::Duration advance_span = 0;
  sim::Duration finalize_span = 0;
  std::size_t excluded = 0;
  /// Per-unit (local, channel) values, ordered (only consistent units).
  std::map<net::UnitId, std::pair<std::uint64_t, std::uint64_t>> values;

  friend bool operator==(const SnapSummary&, const SnapSummary&) = default;
};

SnapSummary summarize(const snap::GlobalSnapshot& s) {
  SnapSummary out;
  out.complete = s.complete;
  out.completed_at = s.completed_at;
  out.consistent = s.consistent_count();
  out.local_total = s.total_value(false);
  out.full_total = s.total_value(true);
  out.advance_span = s.advance_span();
  out.finalize_span = s.finalize_span();
  out.excluded = s.excluded_devices.size();
  for (const auto& [unit, r] : s.reports) {
    if (r.consistent) out.values[unit] = {r.local_value, r.channel_value};
  }
  return out;
}

/// Build a 2x2x3 leaf-spine, drive identical all-to-all traffic, run a
/// campaign of `rounds` snapshots, and summarize each result.
std::vector<SnapSummary> run_campaign(const NetworkOptions& opt,
                                      std::size_t rounds) {
  Network net(net::make_leaf_spine(2, 2, 3), opt);
  auto gens = start_all_to_all(net);
  net.run_for(sim::msec(2));
  const auto campaign = core::run_snapshot_campaign(net, rounds, sim::msec(3));
  const auto results = campaign.results(net);
  std::vector<SnapSummary> out;
  for (const auto* s : results) out.push_back(summarize(*s));
  return out;
}

TEST(WireIntegration, UnchargedFastPathMatchesLegacyExactly) {
  // With byte-charging off, every frame costs the v1 service time, so the
  // event timeline — and therefore every snapshot result, including the
  // completion instants — must be bit-identical to the legacy path under
  // both encodings. This is the codec-transparency oracle.
  NetworkOptions legacy = base_options();

  NetworkOptions delta = base_options();
  delta.wire_fast_path = true;
  delta.wire.encoding = snap::WireEncoding::DeltaV2;
  delta.wire.compact_timestamps = true;
  delta.wire.charge_bytes = false;

  NetworkOptions full = base_options();
  full.wire_fast_path = true;
  full.wire.encoding = snap::WireEncoding::FullV2;
  full.wire.compact_timestamps = false;
  full.wire.charge_bytes = false;

  const auto ref = run_campaign(legacy, 6);
  const auto got_delta = run_campaign(delta, 6);
  const auto got_full = run_campaign(full, 6);
  ASSERT_EQ(ref.size(), 6u);
  ASSERT_EQ(got_delta.size(), ref.size());
  ASSERT_EQ(got_full.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_TRUE(ref[i].complete) << i;
    EXPECT_EQ(got_delta[i], ref[i]) << "delta round " << i;
    EXPECT_EQ(got_full[i], ref[i]) << "full round " << i;
  }
}

TEST(WireIntegration, DeltaEncodingShrinksBytesWithoutErrors) {
  // No channel state: the fig10 configuration the >=5x notification-byte
  // claim is made for (typical delta frame 5B vs the 29B full frame; with
  // channel state the extra last-seen fields land around 4x).
  NetworkOptions delta;
  delta.wire_fast_path = true;  // DeltaV2 + compact ts by default.
  delta.wire.charge_bytes = false;

  NetworkOptions full = delta;
  full.wire.encoding = snap::WireEncoding::FullV2;
  full.wire.compact_timestamps = false;

  snap::WireStats ds, fs;
  {
    Network net(net::make_leaf_spine(2, 2, 3), delta);
    auto gens = start_all_to_all(net);
    net.run_for(sim::msec(2));
    const auto campaign = core::run_snapshot_campaign(net, 6, sim::msec(3));
    ASSERT_EQ(campaign.results(net).size(), 6u);
    ds = net.wire_stats_total();
  }
  {
    Network net(net::make_leaf_spine(2, 2, 3), full);
    auto gens = start_all_to_all(net);
    net.run_for(sim::msec(2));
    const auto campaign = core::run_snapshot_campaign(net, 6, sim::msec(3));
    ASSERT_EQ(campaign.results(net).size(), 6u);
    fs = net.wire_stats_total();
  }
  // Same timeline (uncharged) => same frame counts; only the bytes differ.
  EXPECT_EQ(ds.notifications_encoded, fs.notifications_encoded);
  EXPECT_EQ(ds.reports_encoded, fs.reports_encoded);
  EXPECT_GT(ds.notifications_encoded, 0u);
  EXPECT_GT(ds.reports_encoded, 0u);
  // The paper-facing claim: delta + compact timestamps cut notification
  // bytes >= 5x against the 29-byte full frames.
  EXPECT_GE(fs.notification_bytes, 5 * ds.notification_bytes);
  EXPECT_LT(ds.report_bytes, fs.report_bytes);
  EXPECT_GT(ds.delta_bytes, 0u);
  EXPECT_GT(ds.keyframe_bytes, 0u);
  // Nothing fell back or failed on a healthy fabric.
  EXPECT_EQ(ds.decode_failures, 0u);
  EXPECT_EQ(ds.stale_session_drops, 0u);
  EXPECT_EQ(fs.decode_failures, 0u);
}

TEST(WireIntegration, ChargedDeltaConservesAndRegistersMetrics) {
  NetworkOptions opt = base_options();
  opt.wire_fast_path = true;  // Defaults: DeltaV2, compact ts, charge bytes.
  Network net(net::make_leaf_spine(2, 2, 3), opt);
  auto gens = start_all_to_all(net);
  net.run_for(sim::msec(2));
  const snap::GlobalSnapshot* snap = net.take_snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->complete);
  EXPECT_TRUE(snap->all_consistent());
  // Channel conservation is a value property: byte-dependent service times
  // move the timeline but can never corrupt the counts.
  for (std::size_t t = 0; t < net.spec().trunks.size(); ++t) {
    const auto& trunk = net.spec().trunks[t];
    const auto eg = snap->reports.find({static_cast<net::NodeId>(trunk.switch_a),
                                        trunk.port_a, net::Direction::Egress});
    const auto in = snap->reports.find({static_cast<net::NodeId>(trunk.switch_b),
                                        trunk.port_b, net::Direction::Ingress});
    ASSERT_NE(eg, snap->reports.end());
    ASSERT_NE(in, snap->reports.end());
    EXPECT_EQ(eg->second.local_value,
              in->second.local_value + in->second.channel_value)
        << "trunk " << t;
  }
  // The wire.* accounting series is registered and live.
  EXPECT_TRUE(net.metrics().contains("wire.notification_bytes"));
  EXPECT_TRUE(net.metrics().contains("wire.report_bytes"));
  const auto stats = net.wire_stats_total();
  EXPECT_GT(stats.notification_bytes, 0u);
  EXPECT_GT(stats.report_bytes, 0u);
  EXPECT_EQ(stats.decode_failures, 0u);
}

TEST(WireIntegration, DigestsMatchRetainedReports) {
  NetworkOptions retained = base_options();
  retained.wire_fast_path = true;
  retained.wire.charge_bytes = false;

  NetworkOptions streaming = retained;
  streaming.observer.retain_unit_reports = false;
  streaming.observer.assembly_shards = 4;

  const auto ref = run_campaign(retained, 4);

  Network net(net::make_leaf_spine(2, 2, 3), streaming);
  auto gens = start_all_to_all(net);
  net.run_for(sim::msec(2));
  const auto campaign = core::run_snapshot_campaign(net, 4, sim::msec(3));
  const auto results = campaign.results(net);
  ASSERT_EQ(results.size(), ref.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& s = *results[i];
    // Digest-only assembly: no retained reports, aggregate getters agree
    // with the retained twin.
    EXPECT_TRUE(s.reports.empty()) << i;
    EXPECT_EQ(s.digests.size(), 4u);
    EXPECT_TRUE(s.complete) << i;
    EXPECT_EQ(s.completed_at, ref[i].completed_at) << i;
    EXPECT_EQ(s.consistent_count(), ref[i].consistent) << i;
    EXPECT_EQ(s.total_value(false), ref[i].local_total) << i;
    EXPECT_EQ(s.total_value(true), ref[i].full_total) << i;
    EXPECT_EQ(s.advance_span(), ref[i].advance_span) << i;
    EXPECT_EQ(s.finalize_span(), ref[i].finalize_span) << i;
    EXPECT_GT(s.latest_advance(), 0u) << i;
    // Per-device digests cover every registered switch.
    std::size_t digested = 0;
    for (const auto& shard : s.digests) digested += shard.size();
    EXPECT_EQ(digested, net.num_switches());
  }
}

TEST(WireIntegration, SyncGroupScopeFiltersReportsAtTheSource) {
  NetworkOptions opt = base_options();
  opt.wire_fast_path = true;
  Network net(net::make_leaf_spine(2, 2, 3), opt);
  auto gens = start_all_to_all(net);
  net.run_for(sim::msec(2));

  // Full-scope round first: 28 units on a 2x2x3 leaf-spine.
  const snap::GlobalSnapshot* all = net.take_snapshot();
  ASSERT_NE(all, nullptr);
  ASSERT_TRUE(all->complete);
  EXPECT_EQ(all->expected_total, 28u);

  // Narrow the sync group to ingress units only and let the scope RPCs land.
  net.observer().set_scope([](const net::UnitId& u) {
    return u.direction == net::Direction::Ingress;
  });
  net.run_for(sim::msec(1));
  const snap::GlobalSnapshot* ingress = net.take_snapshot();
  ASSERT_NE(ingress, nullptr);
  EXPECT_TRUE(ingress->complete);
  EXPECT_TRUE(ingress->excluded_devices.empty());
  EXPECT_EQ(ingress->expected_total, 14u);
  EXPECT_EQ(ingress->reports.size(), 14u);
  for (const auto& [unit, r] : ingress->reports) {
    EXPECT_EQ(unit.direction, net::Direction::Ingress);
  }
  // Out-of-scope reports were dropped at the control planes, not shipped
  // and discarded at the observer. Completion only waited on the 14
  // ingress units, so drain the still-finalizing egress units first.
  net.run_for(sim::msec(2));
  std::uint64_t filtered = 0;
  for (std::size_t i = 0; i < net.num_switches(); ++i) {
    filtered += net.switch_at(i).control_plane().reports_filtered();
  }
  EXPECT_EQ(filtered, 14u);

  // Clearing the scope restores full membership.
  net.observer().set_scope(nullptr);
  net.run_for(sim::msec(1));
  const snap::GlobalSnapshot* again = net.take_snapshot();
  ASSERT_NE(again, nullptr);
  EXPECT_TRUE(again->complete);
  EXPECT_EQ(again->expected_total, 28u);
}

TEST(WireIntegration, ObserverRestartBumpsSessionAndRecovers) {
  NetworkOptions opt = base_options();
  opt.wire_fast_path = true;
  opt.observer.completion_timeout = sim::msec(5);
  Network net(net::make_leaf_spine(2, 2, 3), opt);
  auto gens = start_all_to_all(net);
  net.run_for(sim::msec(2));

  const snap::GlobalSnapshot* before = net.take_snapshot();
  ASSERT_NE(before, nullptr);
  EXPECT_TRUE(before->complete);
  EXPECT_EQ(net.observer().wire_session(), 0u);

  // Crash the observer across a scheduled round: its reports are lost, the
  // round times out with exclusions, and the restart bumps the session.
  const auto id = net.observer().request_snapshot(net.now() + sim::msec(1));
  ASSERT_TRUE(id.has_value());
  net.simulator().at(net.now() + sim::usec(900),
                     [&net]() { net.observer().set_down(true); });
  net.simulator().at(net.now() + sim::usec(2500),
                     [&net]() { net.observer().set_down(false); });
  net.run_for(sim::msec(10));
  const snap::GlobalSnapshot* lost = net.observer().result(*id);
  ASSERT_NE(lost, nullptr);
  EXPECT_TRUE(lost->complete);
  EXPECT_FALSE(lost->excluded_devices.empty());
  EXPECT_GT(net.observer().reports_dropped_while_down(), 0u);
  EXPECT_EQ(net.observer().wire_session(), 1u);

  // The re-keyframed links carry the next round cleanly.
  const snap::GlobalSnapshot* after = net.take_snapshot();
  ASSERT_NE(after, nullptr);
  EXPECT_TRUE(after->complete);
  EXPECT_TRUE(after->excluded_devices.empty());
  EXPECT_TRUE(after->all_consistent());
  EXPECT_EQ(net.wire_stats_total().decode_failures, 0u);
}

}  // namespace
