// Topology text serialization: round-trips, parsing, and error reporting.
#include <gtest/gtest.h>

#include <sstream>

#include "net/topology.hpp"
#include "net/topology_io.hpp"

namespace speedlight::net {
namespace {

void expect_equivalent(const TopologySpec& a, const TopologySpec& b) {
  ASSERT_EQ(a.switches.size(), b.switches.size());
  for (std::size_t i = 0; i < a.switches.size(); ++i) {
    EXPECT_EQ(a.switches[i].name, b.switches[i].name);
    EXPECT_EQ(a.switches[i].num_ports, b.switches[i].num_ports);
    EXPECT_EQ(a.switches[i].snapshot_enabled, b.switches[i].snapshot_enabled);
  }
  ASSERT_EQ(a.hosts.size(), b.hosts.size());
  for (std::size_t i = 0; i < a.hosts.size(); ++i) {
    EXPECT_EQ(a.hosts[i].name, b.hosts[i].name);
    EXPECT_EQ(a.hosts[i].attached_switch, b.hosts[i].attached_switch);
    EXPECT_EQ(a.hosts[i].switch_port, b.hosts[i].switch_port);
  }
  ASSERT_EQ(a.trunks.size(), b.trunks.size());
  for (std::size_t i = 0; i < a.trunks.size(); ++i) {
    EXPECT_EQ(a.trunks[i].switch_a, b.trunks[i].switch_a);
    EXPECT_EQ(a.trunks[i].port_a, b.trunks[i].port_a);
    EXPECT_EQ(a.trunks[i].switch_b, b.trunks[i].switch_b);
    EXPECT_EQ(a.trunks[i].port_b, b.trunks[i].port_b);
    EXPECT_NEAR(a.trunks[i].bandwidth_bps, b.trunks[i].bandwidth_bps, 1.0);
    EXPECT_EQ(a.trunks[i].propagation, b.trunks[i].propagation);
  }
  EXPECT_NEAR(a.host_link_bandwidth_bps, b.host_link_bandwidth_bps, 1.0);
  EXPECT_EQ(a.host_link_propagation, b.host_link_propagation);
}

TEST(TopologyIo, RoundTripsAllBuilders) {
  for (const auto& spec :
       {make_leaf_spine(2, 2, 3), make_line(4), make_ring(5), make_star(3),
        make_fat_tree(4), make_figure1()}) {
    expect_equivalent(spec, topology_from_string(topology_to_string(spec)));
  }
}

TEST(TopologyIo, RoundTripsDisabledSwitches) {
  TopologySpec spec = make_line(3);
  spec.switches[1].snapshot_enabled = false;
  const TopologySpec back = topology_from_string(topology_to_string(spec));
  EXPECT_FALSE(back.switches[1].snapshot_enabled);
}

TEST(TopologyIo, ParsesHandWrittenFile) {
  const std::string text = R"(
# A tiny two-rack network.
host_links 25 500
switch tor0 3
switch tor1 3  # comments allowed anywhere
host web tor0 0
host db tor1 0
trunk tor0 2 tor1 2 40 750
)";
  const TopologySpec spec = topology_from_string(text);
  EXPECT_EQ(spec.switches.size(), 2u);
  EXPECT_EQ(spec.hosts.size(), 2u);
  ASSERT_EQ(spec.trunks.size(), 1u);
  EXPECT_NEAR(spec.trunks[0].bandwidth_bps, 40e9, 1.0);
  EXPECT_EQ(spec.trunks[0].propagation, 750);
  EXPECT_NEAR(spec.host_link_bandwidth_bps, 25e9, 1.0);
}

TEST(TopologyIo, TrunkDefaultsApply) {
  const TopologySpec spec = topology_from_string(
      "switch a 2\nswitch b 2\ntrunk a 0 b 0\n");
  ASSERT_EQ(spec.trunks.size(), 1u);
  EXPECT_NEAR(spec.trunks[0].bandwidth_bps, 100e9, 1.0);
}

TEST(TopologyIo, ErrorsCarryLineNumbers) {
  try {
    (void)topology_from_string("switch a 2\nhost h nosuch 0\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("nosuch"), std::string::npos);
  }
}

TEST(TopologyIo, RejectsMalformedDirectives) {
  EXPECT_THROW(topology_from_string("switch a\n"), std::invalid_argument);
  EXPECT_THROW(topology_from_string("switch a 0\n"), std::invalid_argument);
  EXPECT_THROW(topology_from_string("frobnicate x\n"), std::invalid_argument);
  EXPECT_THROW(topology_from_string("switch a 2\nswitch a 2\n"),
               std::invalid_argument);
  EXPECT_THROW(topology_from_string("switch a 2\nhost h a\n"),
               std::invalid_argument);
  EXPECT_THROW(topology_from_string("host_links -1 5\n"),
               std::invalid_argument);
  EXPECT_THROW(topology_from_string("switch a 2\nswitch b 2\ntrunk a 0 b 0 -4\n"),
               std::invalid_argument);
}

TEST(TopologyIo, ValidatesResult) {
  // Structurally parseable but semantically invalid (port reuse).
  EXPECT_THROW(topology_from_string(
                   "switch a 2\nhost h1 a 0\nhost h2 a 0\n"),
               std::invalid_argument);
}

}  // namespace
}  // namespace speedlight::net
