// Wire encoding of the snapshot header.
#include <gtest/gtest.h>

#include "net/snapshot_wire.hpp"

namespace speedlight::net {
namespace {

TEST(SnapshotWire, RoundTrip) {
  SnapshotHeader h;
  h.present = true;
  h.kind = PacketKind::Data;
  h.wire_sid = 0xDEADBEEF;
  h.channel = 0x1234;
  const auto bytes = encode_snapshot_header(h);
  const auto back = decode_snapshot_header(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->present);
  EXPECT_EQ(back->kind, PacketKind::Data);
  EXPECT_EQ(back->wire_sid, 0xDEADBEEFu);
  EXPECT_EQ(back->channel, 0x1234u);
}

TEST(SnapshotWire, RoundTripAllKinds) {
  for (const auto kind :
       {PacketKind::Data, PacketKind::Initiation, PacketKind::Probe}) {
    SnapshotHeader h;
    h.present = true;
    h.kind = kind;
    h.wire_sid = 7;
    const auto back = decode_snapshot_header(encode_snapshot_header(h));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->kind, kind);
  }
}

TEST(SnapshotWire, NetworkByteOrder) {
  SnapshotHeader h;
  h.present = true;
  h.wire_sid = 0x01020304;
  h.channel = 0x0506;
  const auto bytes = encode_snapshot_header(h);
  EXPECT_EQ(bytes[0], kSnapshotHeaderMagic);
  EXPECT_EQ(bytes[2], 0x01);
  EXPECT_EQ(bytes[3], 0x02);
  EXPECT_EQ(bytes[4], 0x03);
  EXPECT_EQ(bytes[5], 0x04);
  EXPECT_EQ(bytes[6], 0x05);
  EXPECT_EQ(bytes[7], 0x06);
}

TEST(SnapshotWire, RejectsBadMagic) {
  auto bytes = encode_snapshot_header({true, PacketKind::Data, 1, 2});
  bytes[0] = 0x00;
  EXPECT_FALSE(decode_snapshot_header(bytes).has_value());
}

TEST(SnapshotWire, RejectsShortBuffer) {
  const auto bytes = encode_snapshot_header({true, PacketKind::Data, 1, 2});
  EXPECT_FALSE(
      decode_snapshot_header(std::span(bytes.data(), 7)).has_value());
  EXPECT_FALSE(decode_snapshot_header({}).has_value());
}

TEST(SnapshotWire, RejectsUnknownKind) {
  auto bytes = encode_snapshot_header({true, PacketKind::Data, 1, 2});
  bytes[1] = 0x09;
  EXPECT_FALSE(decode_snapshot_header(bytes).has_value());
}

TEST(Packet, KindPredicates) {
  Packet p;
  EXPECT_TRUE(p.is_data());
  EXPECT_TRUE(p.counts_for_metrics());
  p.snap.present = true;
  p.snap.kind = PacketKind::Initiation;
  EXPECT_TRUE(p.is_initiation());
  EXPECT_FALSE(p.is_data());
  EXPECT_FALSE(p.counts_for_metrics());
  p.snap.kind = PacketKind::Probe;
  EXPECT_TRUE(p.is_probe());
  EXPECT_FALSE(p.counts_for_metrics());
}

}  // namespace
}  // namespace speedlight::net
