// Guarded statics the mutable-static rule must accept: immutable values,
// thread-local and atomic state, static functions (declaration and
// definition), and a justified in-place suppression.
#include <atomic>
#include <cstdint>

namespace {

static constexpr int kSlots = 64;
static const char* kLabel = "speedlight";
static thread_local std::uint64_t tls_scratch = 0;
static std::atomic<std::uint64_t> live_objects{0};

static int helper(int x);
static int helper(int x) { return x + kSlots; }

// A deliberate mutable static, justified in place:
// speedlight-lint: allow(mutable-static) fixture: single-threaded test tally
static std::uint64_t suppressed_total = 0;

}  // namespace

int use_all() {
  suppressed_total += static_cast<std::uint64_t>(kLabel[0]);
  return helper(static_cast<int>(tls_scratch + suppressed_total +
                                 live_objects.load()));
}
