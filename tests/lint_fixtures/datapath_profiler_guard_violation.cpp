// Fixture: engine-profiler hot calls on the data path must sit inside a
// region the SPEEDLIGHT_TRACE=OFF build compiles out. The guard tracker
// follows the preprocessor conditional stack, including #else flips and
// nesting inside unrelated conditionals.
struct Rec {
  unsigned shard;
};
struct Prof {
  void record_round(const Rec&) {}
  void note_inline_round(unsigned long long) {}
};

void hot_path(Prof& prof, const Rec& rec) {
  prof.record_round(rec);  // LINT-EXPECT: unguarded-profiler

#ifndef SPEEDLIGHT_TRACE_DISABLED
  prof.record_round(rec);  // Guarded: compiled out with the kill switch.
  prof.note_inline_round(1);
#else
  prof.record_round(rec);  // LINT-EXPECT: unguarded-profiler
#endif

#ifdef SPEEDLIGHT_TRACE_DISABLED
  prof.note_inline_round(2);  // LINT-EXPECT: unguarded-profiler
#else
  prof.record_round(rec);  // Guarded: this is the tracing-enabled branch.
#endif

#if !defined(SPEEDLIGHT_TRACE_DISABLED)
  prof.record_round(rec);  // Guarded: negated defined() test.
#endif

#ifdef SOME_OTHER_FLAG
  prof.record_round(rec);  // LINT-EXPECT: unguarded-profiler
#ifndef SPEEDLIGHT_TRACE_DISABLED
  prof.note_inline_round(3);  // Guarded: any enclosing level suffices.
#endif
#endif
}
