// Seeded violations for the determinism rules (scanned as control-plane
// code: these rules apply everywhere).
#include <chrono>
#include <cstdlib>
#include <unordered_map>

struct Packet;

void timestamps() {
  auto a = std::chrono::steady_clock::now();          // LINT-EXPECT: wall-clock
  auto b = std::chrono::system_clock::now();          // LINT-EXPECT: wall-clock
  auto c = std::chrono::high_resolution_clock::now(); // LINT-EXPECT: wall-clock
  long d = time(nullptr);                             // LINT-EXPECT: wall-clock
  (void)a; (void)b; (void)c; (void)d;
}

int entropy() {
  srand(42);                       // LINT-EXPECT: raw-rand
  int x = rand();                  // LINT-EXPECT: raw-rand
  int y = std::rand();             // LINT-EXPECT: raw-rand
  std::random_device rd;           // LINT-EXPECT: raw-rand
  return x + y + static_cast<int>(rd());
}

void iteration_order() {
  std::unordered_map<Packet*, int> by_ptr;  // LINT-EXPECT: pointer-keyed-container
  std::unordered_set<const Packet*> seen;   // LINT-EXPECT: pointer-keyed-container
  (void)by_ptr;
  (void)seen;
}

void fine() {
  // Value-keyed containers and the seeded sim Rng are all fine.
  std::unordered_map<int, int> by_id;
  (void)by_id;
}
