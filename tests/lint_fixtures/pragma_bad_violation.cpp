// Malformed suppression pragmas are diagnostics themselves: exemptions must
// name real rules and carry a justification.

// speedlight-lint: allow(wall-clock)
// LINT-EXPECT-PREV: bad-pragma
int missing_justification();

// speedlight-lint: allow(no-such-rule) justification present
// LINT-EXPECT-PREV: bad-pragma
int unknown_rule();

// speedlight-lint: allow() empty list
// LINT-EXPECT-PREV: bad-pragma
int empty_list();

// speedlight-lint: frobnicate(wall-clock) nonsense verb
// LINT-EXPECT-PREV: bad-pragma
int bad_verb();
