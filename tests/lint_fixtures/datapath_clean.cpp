// Idiomatic data-path code: inline callbacks, pool handles, no heap
// keywords, no type erasure, no virtuals. Must produce zero diagnostics
// even under the data-path rules. Mentions of banned names in comments and
// strings (std::function, new, virtual, rand()) must not fire either.
struct Packet;

template <typename F>
struct InlineTap {
  F fn;  // not a std::function: capture state lives inline
  void operator()(const Packet& p) { fn(p); }
};

const char* describe() {
  return "uses new virtual rand() steady_clock std::function in a string";
}

void forward(const Packet& p, InlineTap<void (*)(const Packet&)>& tap) {
  tap(p);
}
