// Seeded violations for the data-path-only rules. The test scans this file
// under a synthetic src/switchlib/ path; lint_tool_test also re-scans the
// same bytes as control-plane code and expects only the raw-new-delete
// hits to remain.
#include <functional>
#include <memory>

struct Packet;

struct HotPath {
  std::function<void(const Packet&)> tap;  // LINT-EXPECT: std-function-in-datapath

  virtual void process(const Packet& p) = 0;  // LINT-EXPECT: virtual-in-datapath
};

void per_packet(HotPath& h, const Packet& p) {
  h.process(p);
  auto copy = std::make_unique<Packet>(p);  // LINT-EXPECT: datapath-alloc
  auto shared = std::make_shared<Packet>(p);  // LINT-EXPECT: datapath-alloc
  void* raw = malloc(64);  // LINT-EXPECT: datapath-alloc
  (void)copy;
  (void)shared;
  (void)raw;
}

// Raw new/delete also fires its repo-wide rule, so these lines carry two
// expectations each.
Packet* leak() {
  return new Packet();  // LINT-EXPECT: datapath-alloc, raw-new-delete
}

void unleak(Packet* p) {
  delete p;  // LINT-EXPECT: raw-new-delete
}
