// Every violation below carries a justified allow pragma, in each of the
// supported placements; the file must lint clean.
//
// speedlight-lint: allow-file(raw-rand) fixture exercising file scope.
#include <cstdlib>

int file_scope() {
  return rand();  // covered by the allow-file pragma above
}

int same_line() {
  long t = time(nullptr);  // speedlight-lint: allow(wall-clock) fixture: same-line placement
  return static_cast<int>(t);
}

int next_line() {
  // speedlight-lint: allow(wall-clock, raw-new-delete) fixture: the pragma
  long t = time(nullptr);
  // The second rule in the list applies to this pair too:
  // speedlight-lint: allow(raw-new-delete) fixture: next-line placement
  int* p = new int(static_cast<int>(t));
  int v = *p;
  // speedlight-lint: allow(raw-new-delete) fixture: next-line placement
  delete p;
  return v;
}
