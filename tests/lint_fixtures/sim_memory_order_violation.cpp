// Fixture: weak atomic orderings in a concurrency-scope file (sim_* maps
// to src/sim/) must carry an adjacent allow pragma with a happens-before
// justification; bare ones are flagged.
#include <atomic>

namespace fixture {

std::atomic<unsigned> counter{0};
std::atomic<int*> slot{nullptr};

unsigned bare_load() {
  return counter.load(std::memory_order_relaxed);  // LINT-EXPECT: bare-memory-order
}

void bare_store(unsigned v) {
  counter.store(v, std::memory_order_relaxed);  // LINT-EXPECT: bare-memory-order
}

int* bare_consume() {
  return slot.load(std::memory_order_consume);  // LINT-EXPECT: bare-memory-order
}

unsigned justified_same_line() {
  // speedlight-lint: allow(bare-memory-order) standalone counter, no payload
  return counter.fetch_add(1, std::memory_order_relaxed);
}

unsigned justified_comment_block() {
  // The pragma may sit anywhere in the contiguous comment block directly
  // above the access — multi-line justifications are the common case.
  // speedlight-lint: allow(bare-memory-order) value is the whole payload;
  // nothing else is published through this load.
  return counter.load(std::memory_order_relaxed);
}

unsigned acquire_needs_no_pragma() {
  // Safe-default orderings are never flagged.
  return counter.load(std::memory_order_acquire);
}

unsigned detached_pragma() {
  // speedlight-lint: allow(bare-memory-order) blank line breaks adjacency

  return counter.load(std::memory_order_relaxed);  // LINT-EXPECT: bare-memory-order
}

}  // namespace fixture
