// Fixture: classes that own a synchronization primitive (mutex /
// condition_variable / atomic) must annotate every plain mutable data
// member with a capability (GUARDED_BY / thread role) — an unguarded
// member sitting next to a lock is where data races hide.
#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

#define SPEEDLIGHT_GUARDED_BY(x)

namespace fixture {

class LockOwner {
 public:
  void touch();

 private:
  std::mutex mu_;
  std::vector<int> guarded_ SPEEDLIGHT_GUARDED_BY(mu_);
  std::size_t bare_count_ = 0;  // LINT-EXPECT: unannotated-shared-member
  bool bare_flag_ = false;  // LINT-EXPECT: unannotated-shared-member
  const std::size_t capacity_ = 8;
  static constexpr int kClassWide = 1;
};

struct AtomicOwner {
  std::atomic<unsigned> published{0};
  unsigned staging = 0;  // LINT-EXPECT: unannotated-shared-member
  unsigned annotated SPEEDLIGHT_GUARDED_BY(published) = 0;
};

// No synchronization member: plain members are fine, this class is
// single-threaded by construction.
struct PlainAggregate {
  std::size_t width = 0;
  std::size_t height = 0;
};

struct SuppressedOwner {
  std::mutex mu;
  // speedlight-lint: allow(unannotated-shared-member) latch set before the
  // worker starts, read after it joins; ordering via thread start/join
  int handoff = 0;
};

}  // namespace fixture
