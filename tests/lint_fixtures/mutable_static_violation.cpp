// Seeded violations for the mutable-static rule (scanned as control-plane
// code: the rule applies repo-wide). Each flagged line declares static
// storage that is neither const, thread_local, nor atomic — hidden shared
// state that breaks replay determinism and per-shard isolation.
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace {

static std::uint64_t g_counter = 0;      // LINT-EXPECT: mutable-static
static std::vector<int> g_registry;      // LINT-EXPECT: mutable-static

}  // namespace

std::uint64_t next_id() {
  static std::uint64_t last = 0;         // LINT-EXPECT: mutable-static
  return ++last;
}

const std::string& cached_name() {
  static std::string name;               // LINT-EXPECT: mutable-static
  if (name.empty()) name = "speedlight";
  return name;
}

struct Stats {
  inline static std::size_t instances;   // LINT-EXPECT: mutable-static
  static bool verbose;                   // LINT-EXPECT: mutable-static
};
