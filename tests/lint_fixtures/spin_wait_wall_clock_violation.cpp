// Spin-wait profiling is the one sanctioned use of wall-clock time in the
// engine: the parallel engine's futex/spin hybrid wait measures how long
// workers stall (sync_wait_ms in the bench JSON), which is meaningless in
// sim time. That use must still be explicit — a justified allow(wall-clock)
// pragma on the clock read — so every wall-clock source in the tree stays
// auditable. This fixture pins both sides: the bare reads are violations,
// the justified ones lint clean.
#include <atomic>
#include <chrono>
#include <cstdint>

std::uint64_t spin_wait_unjustified(std::atomic<std::uint64_t>& epoch) {
  const std::uint64_t seen = epoch.load(std::memory_order_acquire);
  const auto t0 = std::chrono::steady_clock::now();  // LINT-EXPECT: wall-clock
  while (epoch.load(std::memory_order_acquire) == seen) {
  }
  const auto t1 = std::chrono::steady_clock::now();  // LINT-EXPECT: wall-clock
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

// The engine's actual idiom (sim/parallel.cpp mono_ns): clock read wrapped
// once, pragma and justification on the read itself.
std::uint64_t mono_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now()  // speedlight-lint: allow(wall-clock) sync-wait profiling only
              .time_since_epoch())
          .count());
}

std::uint64_t spin_wait_justified(std::atomic<std::uint64_t>& epoch) {
  const std::uint64_t seen = epoch.load(std::memory_order_acquire);
  const std::uint64_t t0 = mono_ns();
  while (epoch.load(std::memory_order_acquire) == seen) {
  }
  return mono_ns() - t0;
}
