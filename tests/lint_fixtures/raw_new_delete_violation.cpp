// Raw new/delete outside the pool/slab allocators fires everywhere, even in
// control-plane code. Deleted special members must NOT fire.
struct Widget {
  Widget(const Widget&) = delete;             // fine: deleted function
  Widget& operator=(const Widget&) = delete;  // fine: deleted function
};

int* grab() {
  return new int[4];  // LINT-EXPECT: raw-new-delete
}

void drop(int* p) {
  delete[] p;  // LINT-EXPECT: raw-new-delete
}
