// Determinism regression: the event core must execute same-timestamp events
// in schedule order, bit-identically, run after run.
//
// The golden trace below (entry count + FNV-1a hash over the (time, tag)
// stream) was captured from the SEED implementation of EventQueue
// (std::priority_queue + unordered_map) before the slab/4-ary-heap rewrite,
// so this test also pins that the rewrite preserved the exact event order —
// including timestamp collisions, zero-delay self-scheduling, past-time
// clamping, and cancel/re-arm churn.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "net/topology.hpp"
#include "sim/determinism.hpp"
#include "sim/simulator.hpp"

namespace speedlight {
namespace {

std::vector<std::pair<sim::SimTime, int>> run_scenario() {
  sim::Simulator s;
  std::vector<std::pair<sim::SimTime, int>> log;
  std::vector<sim::EventId> ids;

  // Phase 1: colliding timestamps with interleaved cancellations.
  for (int i = 0; i < 60; ++i) {
    const sim::SimTime t = (i * 7) % 40;
    ids.push_back(s.at(t, [&log, &s, i] { log.emplace_back(s.now(), i); }));
  }
  for (int i = 0; i < 60; i += 3) s.cancel(ids[i]);

  // Phase 2: events scheduling events, zero delays, past-time clamping.
  s.at(35, [&] {
    log.emplace_back(s.now(), 1000);
    s.after(0, [&] { log.emplace_back(s.now(), 1001); });
    s.at(10, [&] { log.emplace_back(s.now(), 1002); });  // clamps to now
    s.after(5, [&] { log.emplace_back(s.now(), 1003); });
  });

  // Phase 3: a periodically re-armed timer (schedule + cancel churn).
  auto shadow = std::make_shared<sim::EventId>(
      s.at(500, [&log, &s] { log.emplace_back(s.now(), 2000); }));
  for (int i = 0; i < 20; ++i) {
    s.at(100 + i, [&log, &s, shadow, i] {
      log.emplace_back(s.now(), 3000 + i);
      s.cancel(*shadow);
      *shadow =
          s.at(500 + i, [&log, &s, i] { log.emplace_back(s.now(), 2100 + i); });
    });
  }

  s.run_until(10000);
  return log;
}

std::uint64_t fnv1a_hash(const std::vector<std::pair<sim::SimTime, int>>& log) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& [t, tag] : log) {
    for (int b = 0; b < 8; ++b) {
      h ^= static_cast<std::uint64_t>((t >> (8 * b)) & 0xff);
      h *= 1099511628211ull;
    }
    for (int b = 0; b < 4; ++b) {
      h ^= static_cast<std::uint64_t>(
          (static_cast<std::uint32_t>(tag) >> (8 * b)) & 0xff);
      h *= 1099511628211ull;
    }
  }
  return h;
}

TEST(Determinism, GoldenTraceMatchesSeedImplementation) {
  const auto log = run_scenario();
  EXPECT_EQ(log.size(), 65u);
  EXPECT_EQ(fnv1a_hash(log), 0x04158ec688c56ed2ull);
}

TEST(Determinism, RunToRunIdentity) {
  const auto a = run_scenario();
  const auto b = run_scenario();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first) << "entry " << i;
    EXPECT_EQ(a[i].second, b[i].second) << "entry " << i;
  }
}

TEST(Determinism, TraceIsMonotoneAndCancelledEventsNeverFire) {
  const auto log = run_scenario();
  sim::SimTime prev = 0;
  for (const auto& [t, tag] : log) {
    EXPECT_GE(t, prev);
    prev = t;
    if (tag < 60) {
      EXPECT_NE(tag % 3, 0) << "cancelled event fired: " << tag;
    }
    EXPECT_NE(tag, 2000) << "re-armed shadow timer's original fired";
  }
}

// Network-level identity: two same-seed snapshot campaigns must produce
// identical observable state (packets, notifications, snapshot verdicts).
TEST(Determinism, SameSeedNetworkRunsAreIdentical) {
  auto run_once = [] {
    core::NetworkOptions opt;
    opt.seed = 1234;
    core::Network net(net::make_leaf_spine(2, 2, 2), opt);
    for (int i = 0; i < 200; ++i) {
      net.simulator().at(i * sim::usec(5), [&net, i] {
        net.host(static_cast<std::size_t>(i % 4))
            .send(net.host_id(static_cast<std::size_t>((i + 1) % 4)),
                  static_cast<net::FlowId>(i % 16), 400 + (i % 5) * 250);
      });
    }
    core::run_snapshot_campaign(net, 3, sim::msec(1), sim::usec(50),
                                sim::usec(200));
    struct Observed {
      std::uint64_t delivered = 0;
      std::uint64_t executed = 0;
      std::uint64_t scheduled = 0;
      auto operator<=>(const Observed&) const = default;
    } obs;
    for (std::size_t h = 0; h < 4; ++h) {
      obs.delivered += net.host(h).packets_received();
    }
    obs.executed = net.simulator().stats().executed;
    obs.scheduled = net.simulator().stats().scheduled;
    return obs;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.scheduled, b.scheduled);
  EXPECT_GT(a.delivered, 0u);
}

// The tie-break auditor's pairing logic is testable without the
// SPEEDLIGHT_CHECK_DETERMINISM hooks: drive begin_event/touch/end_event by
// hand (exactly what Simulator + touch_scope do when compiled in).
TEST(DetAuditor, PairsOnlySameTimestampEventsSharingAScope) {
  sim::det::Auditor a;
  a.install();
  a.begin_event(100, 1);
  a.touch(7);
  a.end_event();
  a.begin_event(100, 2);  // Same tick, same unit: a tie pair.
  a.touch(7);
  a.end_event();
  a.begin_event(100, 3);  // Same tick, disjoint unit: no pair.
  a.touch(8);
  a.end_event();
  a.begin_event(200, 4);  // Later tick: new cohort, no pair.
  a.touch(7);
  a.end_event();
  a.uninstall();
  EXPECT_EQ(a.tie_pairs(), 1u);
  EXPECT_EQ(a.events_seen(), 4u);
  EXPECT_EQ(a.scope_touches(), 4u);
}

TEST(DetAuditor, FingerprintReproducesAndIsOrderSensitive) {
  auto run = [](bool swapped) {
    sim::det::Auditor a;
    a.install();
    const std::uint64_t first = swapped ? 2 : 1;
    const std::uint64_t second = swapped ? 1 : 2;
    a.begin_event(50, first);
    a.touch(9);
    a.end_event();
    a.begin_event(50, second);
    a.touch(9);
    a.end_event();
    a.uninstall();
    return a.fingerprint();
  };
  EXPECT_EQ(run(false), run(false));  // Twin runs agree...
  EXPECT_NE(run(false), run(true));   // ...but a reordered tie is visible.
}

TEST(DetAuditor, DedupsRepeatedTouchesWithinOneEvent) {
  sim::det::Auditor a;
  a.install();
  a.begin_event(10, 1);
  a.touch(5);
  a.touch(5);
  a.touch(5);
  a.end_event();
  a.begin_event(10, 2);
  a.touch(5);
  a.end_event();
  a.uninstall();
  EXPECT_EQ(a.scope_touches(), 2u);
  EXPECT_EQ(a.tie_pairs(), 1u);  // One shared scope => one pair, not three.
}

}  // namespace
}  // namespace speedlight
