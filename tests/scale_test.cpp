// Scale and feature-interaction integration tests: larger fabrics and all
// optional switch features enabled at once.
#include <gtest/gtest.h>

#include <memory>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "net/topology.hpp"
#include "obs/process_stats.hpp"
#include "test_topologies.hpp"
#include "polling/int_telemetry.hpp"
#include "polling/sampling.hpp"
#include "workload/basic.hpp"

namespace speedlight {
namespace {

using core::Network;
using core::NetworkOptions;

TEST(Scale, FatTree6ChannelStateSnapshot) {
  // k=6 fat-tree: 45 switches, 54 hosts, 432 processing units.
  NetworkOptions opt;
  opt.seed = 606;
  opt.snapshot.channel_state = true;
  Network net(check::make_topo(check::TopoKind::FatTree, 6), opt);
  ASSERT_EQ(net.num_switches(), 45u);
  ASSERT_EQ(net.num_hosts(), 54u);

  std::vector<std::unique_ptr<wl::Generator>> gens;
  for (std::size_t h = 0; h < net.num_hosts(); h += 3) {
    auto g = std::make_unique<wl::PoissonGenerator>(
        net.simulator(), net.host(h),
        std::vector<net::NodeId>{net.host_id((h + 27) % 54)}, 30000, 1200,
        sim::Rng(606 + h));
    g->start(net.now());
    gens.push_back(std::move(g));
  }
  net.run_for(sim::msec(3));
  const auto* snap = net.take_snapshot(sim::msec(1), sim::msec(400));
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->complete);
  EXPECT_TRUE(snap->excluded_devices.empty());
  // 45 switches x 6 ports x 2 directions.
  EXPECT_EQ(snap->reports.size(), 540u);
}

TEST(Scale, FatTree6Conservation) {
  NetworkOptions opt;
  opt.seed = 607;
  opt.snapshot.channel_state = true;
  Network net(check::make_topo(check::TopoKind::FatTree, 6), opt);
  std::vector<std::unique_ptr<wl::Generator>> gens;
  for (std::size_t h = 0; h < net.num_hosts(); h += 2) {
    auto g = std::make_unique<wl::PoissonGenerator>(
        net.simulator(), net.host(h),
        std::vector<net::NodeId>{net.host_id((h + 13) % 54),
                                 net.host_id((h + 31) % 54)},
        40000, 1000, sim::Rng(707 + h));
    g->start(net.now());
    gens.push_back(std::move(g));
  }
  net.run_for(sim::msec(3));
  const auto* snap = net.take_snapshot(sim::msec(1), sim::msec(400));
  ASSERT_NE(snap, nullptr);
  ASSERT_TRUE(snap->complete);
  EXPECT_TRUE(snap->all_consistent());
  // Conservation on every one of the 216 trunk directions.
  std::size_t checked = 0;
  for (const auto& t : net.spec().trunks) {
    for (const bool fwd : {true, false}) {
      const auto sa = static_cast<net::NodeId>(fwd ? t.switch_a : t.switch_b);
      const auto sb = static_cast<net::NodeId>(fwd ? t.switch_b : t.switch_a);
      const auto pa = fwd ? t.port_a : t.port_b;
      const auto pb = fwd ? t.port_b : t.port_a;
      const auto e = snap->reports.find({sa, pa, net::Direction::Egress});
      const auto i = snap->reports.find({sb, pb, net::Direction::Ingress});
      ASSERT_NE(e, snap->reports.end());
      ASSERT_NE(i, snap->reports.end());
      EXPECT_EQ(e->second.local_value,
                i->second.local_value + i->second.channel_value);
      ++checked;
    }
  }
  EXPECT_EQ(checked, net.spec().trunks.size() * 2);
  // Synchronization bound holds at this scale too.
  EXPECT_LT(snap->advance_span(), sim::usec(100));
}

TEST(FeatureInteraction, EverythingOnAtOnce) {
  // CoS + ECN + INT + sampling + channel-state snapshots + flowlet + small
  // wire-id space, simultaneously: features must not interfere with the
  // protocol's guarantees.
  NetworkOptions opt;
  opt.seed = 99;
  opt.snapshot.channel_state = true;
  opt.snapshot.wire_id_modulus = 16;
  opt.load_balancer = sw::LoadBalancerKind::Flowlet;
  opt.cos_classes = 2;
  opt.classifier = [](const net::Packet& p) {
    return static_cast<std::size_t>(p.flow % 2);
  };
  opt.ecn_threshold = 16;
  opt.int_enabled = true;
  Network net(check::make_topo(check::TopoKind::LeafSpine, 2, 2, 3), opt);

  poll::SamplingCollector sampler(net.simulator(), 10);
  auto sink = sampler.sink();
  for (std::size_t s = 0; s < net.num_switches(); ++s) {
    net.switch_at(s).enable_sampling(
        10,
        [&sink, &net](net::NodeId sw, net::PortId port, const net::Packet& p) {
          sink({sw, port, p.size_bytes, net.simulator().now()});
        });
  }
  poll::IntCollector int_collector;
  int_collector.attach_to(net.host(5));
  for (std::size_t h = 0; h < net.num_hosts(); ++h) {
    net.host(h).set_int_marking(true);
  }

  std::vector<std::unique_ptr<wl::Generator>> gens;
  for (std::size_t h = 0; h < net.num_hosts(); ++h) {
    auto g = std::make_unique<wl::PoissonGenerator>(
        net.simulator(), net.host(h),
        std::vector<net::NodeId>{net.host_id((h + 1) % 6),
                                 net.host_id((h + 5) % 6)},
        80000, 1100, sim::Rng(99 + h));
    g->start(net.now());
    gens.push_back(std::move(g));
  }
  net.run_for(sim::msec(3));
  const auto campaign = core::run_snapshot_campaign(net, 6, sim::msec(4));
  const auto results = campaign.results(net);
  ASSERT_EQ(results.size(), 6u);
  for (const auto* snap : results) {
    EXPECT_TRUE(snap->all_consistent());
    for (const auto& t : net.spec().trunks) {
      const auto e = snap->reports.find(
          {static_cast<net::NodeId>(t.switch_a), t.port_a, net::Direction::Egress});
      const auto i = snap->reports.find(
          {static_cast<net::NodeId>(t.switch_b), t.port_b, net::Direction::Ingress});
      ASSERT_NE(e, snap->reports.end());
      ASSERT_NE(i, snap->reports.end());
      EXPECT_EQ(e->second.local_value,
                i->second.local_value + i->second.channel_value);
    }
  }
  // The side-channels all saw traffic too.
  EXPECT_GT(sampler.total_samples(), 50u);
  EXPECT_GT(int_collector.telemetry_packets(), 100u);
}

TEST(Scale, FatTree16LazyMaterialization) {
  // k=16: 320 switches, 1,024 hosts, 5,120 switch ports. The SoA core must
  // construct it without materializing a single port unit, inside a hard
  // RSS ceiling, and traffic must materialize only the ports it touches.
  const std::int64_t rss_before =
      static_cast<std::int64_t>(obs::current_rss_kb());
  NetworkOptions opt;
  opt.seed = 1616;
  Network net(net::make_fat_tree(16), opt);
  ASSERT_EQ(net.num_switches(), 320u);
  ASSERT_EQ(net.num_hosts(), 1024u);
  EXPECT_EQ(net.materialized_ports(), 0u);
  const std::int64_t rss_built =
      static_cast<std::int64_t>(obs::current_rss_kb());
  if (rss_before > 0) {
    // Measured ~5.5 MB of growth for the whole fabric; the ceiling leaves
    // headroom for allocator noise but forbids any per-port eager build
    // (eager dataplane units alone would cost tens of MB).
    EXPECT_LT(rss_built - rss_before, 40 * 1024)
        << "construction RSS growth (KiB) exceeds the k=16 ceiling";
  }

  // One flow between two hosts on the same edge switch: only that switch's
  // two access ports are on the path, and only they may materialize.
  wl::CbrGenerator gen(net.simulator(), net.host(0), net.host_id(1),
                       /*flow=*/1, /*rate_bps=*/1e9, /*packet_size=*/1000);
  gen.start(net.now());
  net.run_for(sim::usec(200));
  gen.stop();
  const std::size_t touched = net.materialized_ports();
  EXPECT_GT(touched, 0u);
  EXPECT_LE(touched, 4u) << "materialization must be O(ports touched), "
                            "not O(total ports)";
}

TEST(Scale, FatTree32SnapshotRoundUnderMemoryBudget) {
  // The acceptance fabric: fat-tree k=32 — 1,280 switches, 8,192 hosts,
  // 40,960 switch ports. It must construct and complete a full snapshot
  // round inside the documented memory budget (DESIGN.md §14: < 128 MB to
  // construct, < 512 MB through a probe-flood round).
  const std::int64_t rss_before =
      static_cast<std::int64_t>(obs::current_rss_kb());
  NetworkOptions opt;
  opt.seed = 3232;
  Network net(net::make_fat_tree(32), opt);
  ASSERT_EQ(net.num_switches(), 1280u);
  ASSERT_EQ(net.num_hosts(), 8192u);
  EXPECT_EQ(net.materialized_ports(), 0u);
  const std::int64_t rss_built =
      static_cast<std::int64_t>(obs::current_rss_kb());
  if (rss_before > 0) {
    EXPECT_LT(rss_built - rss_before, 128 * 1024)
        << "construction RSS growth (KiB) exceeds the k=32 budget";
  }

  const auto* snap = net.take_snapshot(sim::msec(1), sim::msec(400));
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->complete);
  EXPECT_TRUE(snap->excluded_devices.empty());
  // 1,280 switches x 32 ports x 2 directions.
  EXPECT_EQ(snap->reports.size(), 81920u);
  // The probe flood touches every switch port — and is allowed to.
  EXPECT_EQ(net.materialized_ports(), 40960u);
  const std::int64_t rss_after =
      static_cast<std::int64_t>(obs::current_rss_kb());
  if (rss_before > 0) {
    EXPECT_LT(rss_after - rss_before, 512 * 1024)
        << "RSS growth (KiB) through a snapshot round exceeds the budget";
  }
}

}  // namespace
}  // namespace speedlight
