// Scale and feature-interaction integration tests: larger fabrics and all
// optional switch features enabled at once.
#include <gtest/gtest.h>

#include <memory>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "net/topology.hpp"
#include "test_topologies.hpp"
#include "polling/int_telemetry.hpp"
#include "polling/sampling.hpp"
#include "workload/basic.hpp"

namespace speedlight {
namespace {

using core::Network;
using core::NetworkOptions;

TEST(Scale, FatTree6ChannelStateSnapshot) {
  // k=6 fat-tree: 45 switches, 54 hosts, 432 processing units.
  NetworkOptions opt;
  opt.seed = 606;
  opt.snapshot.channel_state = true;
  Network net(check::make_topo(check::TopoKind::FatTree, 6), opt);
  ASSERT_EQ(net.num_switches(), 45u);
  ASSERT_EQ(net.num_hosts(), 54u);

  std::vector<std::unique_ptr<wl::Generator>> gens;
  for (std::size_t h = 0; h < net.num_hosts(); h += 3) {
    auto g = std::make_unique<wl::PoissonGenerator>(
        net.simulator(), net.host(h),
        std::vector<net::NodeId>{net.host_id((h + 27) % 54)}, 30000, 1200,
        sim::Rng(606 + h));
    g->start(net.now());
    gens.push_back(std::move(g));
  }
  net.run_for(sim::msec(3));
  const auto* snap = net.take_snapshot(sim::msec(1), sim::msec(400));
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->complete);
  EXPECT_TRUE(snap->excluded_devices.empty());
  // 45 switches x 6 ports x 2 directions.
  EXPECT_EQ(snap->reports.size(), 540u);
}

TEST(Scale, FatTree6Conservation) {
  NetworkOptions opt;
  opt.seed = 607;
  opt.snapshot.channel_state = true;
  Network net(check::make_topo(check::TopoKind::FatTree, 6), opt);
  std::vector<std::unique_ptr<wl::Generator>> gens;
  for (std::size_t h = 0; h < net.num_hosts(); h += 2) {
    auto g = std::make_unique<wl::PoissonGenerator>(
        net.simulator(), net.host(h),
        std::vector<net::NodeId>{net.host_id((h + 13) % 54),
                                 net.host_id((h + 31) % 54)},
        40000, 1000, sim::Rng(707 + h));
    g->start(net.now());
    gens.push_back(std::move(g));
  }
  net.run_for(sim::msec(3));
  const auto* snap = net.take_snapshot(sim::msec(1), sim::msec(400));
  ASSERT_NE(snap, nullptr);
  ASSERT_TRUE(snap->complete);
  EXPECT_TRUE(snap->all_consistent());
  // Conservation on every one of the 216 trunk directions.
  std::size_t checked = 0;
  for (const auto& t : net.spec().trunks) {
    for (const bool fwd : {true, false}) {
      const auto sa = static_cast<net::NodeId>(fwd ? t.switch_a : t.switch_b);
      const auto sb = static_cast<net::NodeId>(fwd ? t.switch_b : t.switch_a);
      const auto pa = fwd ? t.port_a : t.port_b;
      const auto pb = fwd ? t.port_b : t.port_a;
      const auto e = snap->reports.find({sa, pa, net::Direction::Egress});
      const auto i = snap->reports.find({sb, pb, net::Direction::Ingress});
      ASSERT_NE(e, snap->reports.end());
      ASSERT_NE(i, snap->reports.end());
      EXPECT_EQ(e->second.local_value,
                i->second.local_value + i->second.channel_value);
      ++checked;
    }
  }
  EXPECT_EQ(checked, net.spec().trunks.size() * 2);
  // Synchronization bound holds at this scale too.
  EXPECT_LT(snap->advance_span(), sim::usec(100));
}

TEST(FeatureInteraction, EverythingOnAtOnce) {
  // CoS + ECN + INT + sampling + channel-state snapshots + flowlet + small
  // wire-id space, simultaneously: features must not interfere with the
  // protocol's guarantees.
  NetworkOptions opt;
  opt.seed = 99;
  opt.snapshot.channel_state = true;
  opt.snapshot.wire_id_modulus = 16;
  opt.load_balancer = sw::LoadBalancerKind::Flowlet;
  opt.cos_classes = 2;
  opt.classifier = [](const net::Packet& p) {
    return static_cast<std::size_t>(p.flow % 2);
  };
  opt.ecn_threshold = 16;
  opt.int_enabled = true;
  Network net(check::make_topo(check::TopoKind::LeafSpine, 2, 2, 3), opt);

  poll::SamplingCollector sampler(net.simulator(), 10);
  auto sink = sampler.sink();
  for (std::size_t s = 0; s < net.num_switches(); ++s) {
    net.switch_at(s).enable_sampling(
        10,
        [&sink, &net](net::NodeId sw, net::PortId port, const net::Packet& p) {
          sink({sw, port, p.size_bytes, net.simulator().now()});
        });
  }
  poll::IntCollector int_collector;
  int_collector.attach_to(net.host(5));
  for (std::size_t h = 0; h < net.num_hosts(); ++h) {
    net.host(h).set_int_marking(true);
  }

  std::vector<std::unique_ptr<wl::Generator>> gens;
  for (std::size_t h = 0; h < net.num_hosts(); ++h) {
    auto g = std::make_unique<wl::PoissonGenerator>(
        net.simulator(), net.host(h),
        std::vector<net::NodeId>{net.host_id((h + 1) % 6),
                                 net.host_id((h + 5) % 6)},
        80000, 1100, sim::Rng(99 + h));
    g->start(net.now());
    gens.push_back(std::move(g));
  }
  net.run_for(sim::msec(3));
  const auto campaign = core::run_snapshot_campaign(net, 6, sim::msec(4));
  const auto results = campaign.results(net);
  ASSERT_EQ(results.size(), 6u);
  for (const auto* snap : results) {
    EXPECT_TRUE(snap->all_consistent());
    for (const auto& t : net.spec().trunks) {
      const auto e = snap->reports.find(
          {static_cast<net::NodeId>(t.switch_a), t.port_a, net::Direction::Egress});
      const auto i = snap->reports.find(
          {static_cast<net::NodeId>(t.switch_b), t.port_b, net::Direction::Ingress});
      ASSERT_NE(e, snap->reports.end());
      ASSERT_NE(i, snap->reports.end());
      EXPECT_EQ(e->second.local_value,
                i->second.local_value + i->second.channel_value);
    }
  }
  // The side-channels all saw traffic too.
  EXPECT_GT(sampler.total_samples(), 50u);
  EXPECT_GT(int_collector.telemetry_packets(), 100u);
}

}  // namespace
}  // namespace speedlight
